//! Occurrence-net types: conditions, events, prefixes, configurations.

use std::fmt;

use petri::{BitSet, Marking, ParikhVector, PlaceId, TransitionId};
use stg::{ChangeVec, Label, Stg};

use crate::builder::UnfoldStats;
use crate::order::OrderKey;

/// Identifier of a condition (occurrence-net place) in a [`Prefix`].
///
/// The numbering is private to the unfolder; obtain ids from a
/// [`Prefix`]'s iterators and accessors, or reconstitute one from a
/// previously obtained [`CondId::index`] with [`CondId::from_index`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CondId(u32);

impl CondId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The condition with the given raw index (the inverse of
    /// [`CondId::index`]; e.g. a bit position from a condition set).
    pub fn from_index(index: usize) -> Self {
        CondId(index as u32)
    }
}

impl fmt::Debug for CondId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

impl fmt::Display for CondId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// Identifier of an event (occurrence-net transition) in a [`Prefix`].
/// Events are numbered in insertion order, which coincides with the
/// adequate order used during construction.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct EventId(u32);

impl EventId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The event with the given raw index (the inverse of
    /// [`EventId::index`]; e.g. a bit position from a configuration
    /// bit set).
    pub fn from_index(index: usize) -> Self {
        EventId(index as u32)
    }
}

impl fmt::Debug for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// What a cut-off event's configuration corresponds to: either the
/// empty configuration (its marking is `M0`) or the local
/// configuration of another event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CutoffMate {
    /// `Mark([e]) = M0`.
    Initial,
    /// `Mark([e]) = Mark([f])` for the given `f` with `[f] < [e]`.
    Event(EventId),
}

#[derive(Debug, Clone)]
pub(crate) struct CondData {
    pub place: PlaceId,
    pub producer: Option<EventId>,
    pub consumers: Vec<EventId>,
    /// Conditions in the postset of a cut-off event are part of the
    /// prefix but are never extended.
    pub from_cutoff: bool,
}

#[derive(Debug, Clone)]
pub(crate) struct EventData {
    pub transition: TransitionId,
    pub preset: Vec<CondId>,
    pub postset: Vec<CondId>,
    pub cutoff: Option<CutoffMate>,
    /// The adequate-order key of `[e]` the event was queued with.
    pub key: OrderKey,
    /// The local configuration `[e]` as an event bit set (includes
    /// `e` itself). Capacity equals the final number of events.
    pub local: BitSet,
    /// `|[e]|`.
    pub size: u32,
    /// Foata depth: `1 +` max depth of causal predecessors.
    pub depth: u32,
}

/// A finite (complete) prefix of the unfolding of a safe net system —
/// the branching process `Pref_Σ = (B, E, G, h)` of §2.3, with its
/// set of cut-off events.
///
/// Construct with [`Prefix::unfold`] (plain net systems) or
/// [`Prefix::of_stg`].
#[derive(Debug, Clone)]
pub struct Prefix {
    pub(crate) conds: Vec<CondData>,
    pub(crate) events: Vec<EventData>,
    pub(crate) min_conds: Vec<CondId>,
    pub(crate) num_cutoffs: usize,
    pub(crate) num_places: usize,
    pub(crate) num_transitions: usize,
    pub(crate) stats: UnfoldStats,
}

impl Prefix {
    /// Number of conditions `|B|`.
    pub fn num_conditions(&self) -> usize {
        self.conds.len()
    }

    /// Number of events `|E|`.
    pub fn num_events(&self) -> usize {
        self.events.len()
    }

    /// Number of cut-off events `|E_cut|`.
    pub fn num_cutoffs(&self) -> usize {
        self.num_cutoffs
    }

    /// Iterates over all event ids in adequate (insertion) order.
    pub fn events(&self) -> impl ExactSizeIterator<Item = EventId> + '_ {
        (0..self.events.len()).map(|i| EventId(i as u32))
    }

    /// Iterates over all condition ids.
    pub fn conditions(&self) -> impl ExactSizeIterator<Item = CondId> + '_ {
        (0..self.conds.len()).map(|i| CondId(i as u32))
    }

    /// The minimal conditions `Min(ON)` (the initial cut, one per
    /// token of `M0`).
    pub fn min_conditions(&self) -> &[CondId] {
        &self.min_conds
    }

    /// The original place `h(b)`.
    pub fn cond_place(&self, b: CondId) -> PlaceId {
        self.conds[b.index()].place
    }

    /// The event producing `b` (`None` for minimal conditions).
    pub fn cond_producer(&self, b: CondId) -> Option<EventId> {
        self.conds[b.index()].producer
    }

    /// The events consuming `b` (`b•`).
    pub fn cond_consumers(&self, b: CondId) -> &[EventId] {
        &self.conds[b.index()].consumers
    }

    /// Whether `b` was produced by a cut-off event (and is therefore
    /// never extended).
    pub fn cond_from_cutoff(&self, b: CondId) -> bool {
        self.conds[b.index()].from_cutoff
    }

    /// The original transition `h(e)`.
    pub fn event_transition(&self, e: EventId) -> TransitionId {
        self.events[e.index()].transition
    }

    /// The preset `•e`.
    pub fn event_preset(&self, e: EventId) -> &[CondId] {
        &self.events[e.index()].preset
    }

    /// The postset `e•`.
    pub fn event_postset(&self, e: EventId) -> &[CondId] {
        &self.events[e.index()].postset
    }

    /// Whether `e` is a cut-off event.
    pub fn is_cutoff(&self, e: EventId) -> bool {
        self.events[e.index()].cutoff.is_some()
    }

    /// The cut-off mate of `e`, if `e` is a cut-off event.
    pub fn cutoff_mate(&self, e: EventId) -> Option<CutoffMate> {
        self.events[e.index()].cutoff
    }

    /// The local configuration `[e]` (as an event bit set including
    /// `e`).
    pub fn local_config(&self, e: EventId) -> &BitSet {
        &self.events[e.index()].local
    }

    /// `|[e]|`.
    pub fn local_size(&self, e: EventId) -> u32 {
        self.events[e.index()].size
    }

    /// Foata depth of `e` (1 for minimal events).
    pub fn depth(&self, e: EventId) -> u32 {
        self.events[e.index()].depth
    }

    /// The adequate-order key of `[e]` the event was queued and
    /// committed with (size, Parikh vector, Foata normal form — the
    /// Parikh/Foata parts are empty under
    /// [`OrderStrategy::McMillan`](crate::OrderStrategy::McMillan)).
    pub fn order_key(&self, e: EventId) -> &OrderKey {
        &self.events[e.index()].key
    }

    /// Counters recorded while this prefix was built: possible
    /// extensions discovered and committed, the discovery worker
    /// count, and the wall-clock split between the parallelisable
    /// discovery phase and the sequential commit loop.
    pub fn unfold_stats(&self) -> UnfoldStats {
        self.stats
    }

    /// Whether event set `c` is a configuration: causally closed and
    /// conflict-free.
    pub fn is_configuration(&self, c: &BitSet) -> bool {
        // Causal closure: the preset producers of every event are in.
        for e in c.iter() {
            for &b in &self.events[e].preset {
                if let Some(p) = self.conds[b.index()].producer {
                    if !c.contains(p.index()) {
                        return false;
                    }
                }
            }
        }
        // Conflict-freeness: no condition consumed by two members.
        for b in self.conditions() {
            let consumers = self
                .cond_consumers(b)
                .iter()
                .filter(|e| c.contains(e.index()))
                .count();
            if consumers > 1 {
                return false;
            }
        }
        true
    }

    /// The cut `Cut(C)` of a finite configuration: the conditions
    /// produced (or minimal) and not consumed.
    pub fn cut_of(&self, c: &BitSet) -> Vec<CondId> {
        let mut cut = Vec::new();
        for b in self.conditions() {
            let produced = match self.conds[b.index()].producer {
                None => true,
                Some(p) => c.contains(p.index()),
            };
            if !produced {
                continue;
            }
            let consumed = self.cond_consumers(b).iter().any(|e| c.contains(e.index()));
            if !consumed {
                cut.push(b);
            }
        }
        cut
    }

    /// `Mark(C)`: the reachable marking of the original net
    /// represented by configuration `c`.
    pub fn marking_of(&self, c: &BitSet) -> Marking {
        let mut m = Marking::empty(self.num_places);
        for b in self.cut_of(c) {
            m.add_token(self.cond_place(b));
        }
        m
    }

    /// The Parikh vector of `c` over the original transitions.
    pub fn parikh_of(&self, c: &BitSet) -> ParikhVector {
        let mut x = ParikhVector::zero(self.num_transitions);
        for e in c.iter() {
            x.increment(self.events[e].transition);
        }
        x
    }

    /// A linearisation of `c`: its events in a causality-respecting
    /// order (by Foata depth, then id), mapped to original
    /// transitions they are ready to fire as.
    pub fn linearize(&self, c: &BitSet) -> Vec<EventId> {
        let mut events: Vec<EventId> = c.iter().map(|i| EventId(i as u32)).collect();
        events.sort_by_key(|&e| (self.depth(e), e));
        events
    }

    /// The firing sequence of original transitions corresponding to
    /// [`Prefix::linearize`].
    pub fn firing_sequence(&self, c: &BitSet) -> Vec<TransitionId> {
        self.linearize(c)
            .into_iter()
            .map(|e| self.event_transition(e))
            .collect()
    }

    /// The signal-change vector `v_C` of a configuration of an STG
    /// prefix.
    pub fn change_vector(&self, stg: &Stg, c: &BitSet) -> ChangeVec {
        let mut v = ChangeVec::zero(stg.num_signals());
        for e in c.iter() {
            if let Label::SignalEdge(z, edge) = stg.label(self.events[e].transition) {
                v.bump(z, edge.delta());
            }
        }
        v
    }

    /// An empty event set sized for this prefix (convenience for
    /// building configurations).
    pub fn empty_config(&self) -> BitSet {
        BitSet::new(self.num_events())
    }

    /// Whether the net is *dynamically conflict-free* as observed on
    /// the prefix (§7): no condition has two consumers. For such nets
    /// the union of any two configurations is a configuration
    /// (Proposition 1 applies).
    pub fn is_dynamically_conflict_free(&self) -> bool {
        self.conds.iter().all(|c| c.consumers.len() <= 1)
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "prefix: |B|={} |E|={} |E_cut|={}",
            self.num_conditions(),
            self.num_events(),
            self.num_cutoffs()
        )
    }
}
