//! Causality and conflict relations between prefix events, as dense
//! bit sets.
//!
//! These drive the integer-programming solver's propagation (§4 of
//! the paper): setting `x(e) = 1` forces `x(f) = 1` for all causal
//! predecessors `f < e` and `x(g) = 0` for all `g # e`; setting
//! `x(e) = 0` forces `x(f) = 0` for all successors.

use petri::BitSet;

use crate::occ::{EventId, Prefix};

/// Precomputed per-event relation bit sets over a prefix.
///
/// # Examples
///
/// ```
/// use stg::gen::vme::vme_read;
/// use unfolding::{EventRelations, Prefix, UnfoldOptions};
///
/// # fn main() -> Result<(), unfolding::UnfoldError> {
/// let stg = vme_read();
/// let prefix = Prefix::of_stg(&stg, UnfoldOptions::default())?;
/// let rel = EventRelations::of(&prefix);
/// for e in prefix.events() {
///     // No event conflicts with itself or its causal past.
///     assert!(!rel.conflicts(e).contains(e.index()));
///     assert!(rel.conflicts(e).is_disjoint(rel.predecessors(e)));
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct EventRelations {
    n: usize,
    preds: Vec<BitSet>,
    succs: Vec<BitSet>,
    conflicts: Vec<BitSet>,
}

impl EventRelations {
    /// Computes the relations for `prefix`.
    pub fn of(prefix: &Prefix) -> Self {
        let n = prefix.num_events();
        let mut preds = Vec::with_capacity(n);
        let mut succs = vec![BitSet::new(n); n];
        for e in prefix.events() {
            let mut p = prefix.local_config(e).clone();
            p.grow(n);
            p.remove(e.index());
            for q in p.iter() {
                succs[q].insert(e.index());
            }
            preds.push(p);
        }
        // Up-sets: up[g] = {g} ∪ succs[g].
        let upset = |g: usize| -> BitSet {
            let mut u = succs[g].clone();
            u.insert(g);
            u
        };
        let mut conflicts = vec![BitSet::new(n); n];
        for b in prefix.conditions() {
            let consumers = prefix.cond_consumers(b);
            for (i, &g1) in consumers.iter().enumerate() {
                for &g2 in &consumers[i + 1..] {
                    let u1 = upset(g1.index());
                    let u2 = upset(g2.index());
                    for x in u1.iter() {
                        conflicts[x].union_with(&u2);
                    }
                    for y in u2.iter() {
                        conflicts[y].union_with(&u1);
                    }
                }
            }
        }
        EventRelations {
            n,
            preds,
            succs,
            conflicts,
        }
    }

    /// Number of events.
    pub fn num_events(&self) -> usize {
        self.n
    }

    /// The strict causal predecessors of `e` (`[e] \ {e}`).
    pub fn predecessors(&self, e: EventId) -> &BitSet {
        &self.preds[e.index()]
    }

    /// The strict causal successors of `e`.
    pub fn successors(&self, e: EventId) -> &BitSet {
        &self.succs[e.index()]
    }

    /// The events in conflict with `e` (`{f : f # e}`).
    pub fn conflicts(&self, e: EventId) -> &BitSet {
        &self.conflicts[e.index()]
    }

    /// Whether `a` and `b` are concurrent (neither ordered nor in
    /// conflict).
    pub fn concurrent(&self, a: EventId, b: EventId) -> bool {
        a != b
            && !self.preds[a.index()].contains(b.index())
            && !self.preds[b.index()].contains(a.index())
            && !self.conflicts[a.index()].contains(b.index())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::UnfoldOptions;
    use petri::{Marking, NetBuilder};

    /// p feeds competing t1/t2; independent cycle (q, u).
    fn mixed() -> (petri::Net, Marking) {
        let mut b = NetBuilder::new();
        let p = b.add_place("p");
        let r1 = b.add_place("r1");
        let r2 = b.add_place("r2");
        let t1 = b.add_transition("t1");
        let t2 = b.add_transition("t2");
        b.arc_pt(p, t1).unwrap();
        b.arc_tp(t1, r1).unwrap();
        b.arc_pt(p, t2).unwrap();
        b.arc_tp(t2, r2).unwrap();
        let s1 = b.add_transition("s1");
        b.arc_pt(r1, s1).unwrap();
        let r3 = b.add_place("r3");
        b.arc_tp(s1, r3).unwrap();
        let q0 = b.add_place("q0");
        let q1 = b.add_place("q1");
        let u = b.add_transition("u");
        b.arc_pt(q0, u).unwrap();
        b.arc_tp(u, q1).unwrap();
        let net = b.build().unwrap();
        let m0 = Marking::with_tokens(net.num_places(), &[(p, 1), (q0, 1)]);
        (net, m0)
    }

    #[test]
    fn relations_partition_event_pairs() {
        let (net, m0) = mixed();
        let prefix = Prefix::unfold(&net, &m0, UnfoldOptions::default()).unwrap();
        let rel = EventRelations::of(&prefix);
        for a in prefix.events() {
            for b in prefix.events() {
                if a == b {
                    continue;
                }
                let before = rel.predecessors(b).contains(a.index());
                let after = rel.predecessors(a).contains(b.index());
                let conflict = rel.conflicts(a).contains(b.index());
                let co = rel.concurrent(a, b);
                let count = usize::from(before)
                    + usize::from(after)
                    + usize::from(conflict)
                    + usize::from(co);
                assert_eq!(count, 1, "exactly one relation must hold for {a:?},{b:?}");
            }
        }
    }

    #[test]
    fn conflict_is_inherited_by_successors() {
        let (net, m0) = mixed();
        let prefix = Prefix::unfold(&net, &m0, UnfoldOptions::default()).unwrap();
        let rel = EventRelations::of(&prefix);
        // t1 # t2; s1 (successor of t1) must also conflict with t2.
        let find = |name: &str| {
            prefix
                .events()
                .find(|&e| net.transition_name(prefix.event_transition(e)) == name)
                .unwrap()
        };
        let (e1, e2, es) = (find("t1"), find("t2"), find("s1"));
        assert!(rel.conflicts(e1).contains(e2.index()));
        assert!(rel.conflicts(es).contains(e2.index()));
        assert!(rel.conflicts(e2).contains(es.index()));
        // u is concurrent with everything else.
        let eu = find("u");
        for other in [e1, e2, es] {
            assert!(rel.concurrent(eu, other));
        }
    }
}
