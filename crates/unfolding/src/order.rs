//! Adequate orders on configurations.
//!
//! An *adequate order* `≺` on finite configurations (Esparza/Römer/
//! Vogler) must be well-founded, refine set inclusion, and be
//! preserved by finite extensions. The cut-off criterion "`e` is a
//! cut-off if some `f` with `Mark([f]) = Mark([e])` and `[f] ≺ [e]`
//! exists" then yields a complete prefix.
//!
//! Two strategies are provided:
//!
//! * [`OrderStrategy::McMillan`] — compare sizes only (the original
//!   1992 criterion; partial, so fewer cut-offs and larger prefixes);
//! * [`OrderStrategy::ErvTotal`] — size, then Parikh vectors
//!   lexicographically, then Foata normal forms (the ERV total order,
//!   giving prefixes at most the size of the reachability graph).

use std::cmp::Ordering;

/// Which adequate order the unfolder uses for queueing possible
/// extensions and deciding cut-offs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OrderStrategy {
    /// Compare `|C|` only (partial order).
    McMillan,
    /// The ERV total order: `|C|`, then Parikh-lex, then Foata.
    #[default]
    ErvTotal,
}

/// A precomputed comparison key for the local configuration of a
/// (possible) event. Keys are totally ordered; under
/// [`OrderStrategy::McMillan`] the Parikh/Foata components are left
/// empty so ties are broken arbitrarily but deterministically by the
/// queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderKey {
    /// `|[e]|`.
    pub size: u32,
    /// Occurrence counts per original transition, in transition order.
    pub parikh: Vec<u16>,
    /// Per-Foata-level Parikh vectors, level by level.
    pub foata: Vec<Vec<u16>>,
}

impl OrderKey {
    /// Compares under the given strategy: returns `Less` iff `self ≺
    /// other`.
    pub fn compare(&self, other: &OrderKey, strategy: OrderStrategy) -> Ordering {
        match strategy {
            OrderStrategy::McMillan => self.size.cmp(&other.size),
            OrderStrategy::ErvTotal => self
                .size
                .cmp(&other.size)
                .then_with(|| self.parikh.cmp(&other.parikh))
                .then_with(|| self.foata.cmp(&other.foata)),
        }
    }

    /// Whether `self` is strictly smaller — the condition for using a
    /// mate as a cut-off justification.
    pub fn is_strictly_less(&self, other: &OrderKey, strategy: OrderStrategy) -> bool {
        self.compare(other, strategy) == Ordering::Less
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(size: u32, parikh: Vec<u16>, foata: Vec<Vec<u16>>) -> OrderKey {
        OrderKey {
            size,
            parikh,
            foata,
        }
    }

    #[test]
    fn size_dominates() {
        let a = key(1, vec![9, 9], vec![]);
        let b = key(2, vec![0, 0], vec![]);
        assert_eq!(a.compare(&b, OrderStrategy::ErvTotal), Ordering::Less);
        assert_eq!(a.compare(&b, OrderStrategy::McMillan), Ordering::Less);
    }

    #[test]
    fn parikh_breaks_size_ties_only_for_erv() {
        let a = key(2, vec![2, 0], vec![]);
        let b = key(2, vec![1, 1], vec![]);
        assert_eq!(a.compare(&b, OrderStrategy::ErvTotal), Ordering::Greater);
        assert_eq!(a.compare(&b, OrderStrategy::McMillan), Ordering::Equal);
    }

    #[test]
    fn foata_breaks_parikh_ties() {
        // Same events, different level structure: the more sequential
        // configuration has more levels with smaller first level.
        let a = key(2, vec![1, 1], vec![vec![1, 0], vec![0, 1]]);
        let b = key(2, vec![1, 1], vec![vec![1, 1]]);
        assert_ne!(a.compare(&b, OrderStrategy::ErvTotal), Ordering::Equal);
    }

    #[test]
    fn strictness() {
        let a = key(1, vec![1], vec![vec![1]]);
        let b = key(1, vec![1], vec![vec![1]]);
        assert!(!a.is_strictly_less(&b, OrderStrategy::ErvTotal));
        let c = key(2, vec![2], vec![vec![1], vec![1]]);
        assert!(a.is_strictly_less(&c, OrderStrategy::ErvTotal));
    }
}
