//! Graphviz (DOT) export for unfolding prefixes.
//!
//! Renders the occurrence net in the style of the paper's Fig. 2:
//! events as boxes labelled `e<i>` plus the original transition name,
//! conditions as circles labelled with their original place, cut-off
//! events double-bordered.

use std::fmt::Write as _;

use stg::Stg;

use crate::occ::Prefix;

/// Renders the prefix of an STG as a DOT digraph named `name`,
/// labelling events with their signal edges.
///
/// # Examples
///
/// ```
/// use stg::gen::vme::vme_read;
/// use unfolding::{Prefix, UnfoldOptions};
///
/// # fn main() -> Result<(), unfolding::UnfoldError> {
/// let stg = vme_read();
/// let prefix = Prefix::of_stg(&stg, UnfoldOptions::default())?;
/// let dot = unfolding::dot::to_dot(&prefix, &stg, "pref");
/// assert!(dot.contains("peripheries=2")); // the lds+ cut-off
/// # Ok(())
/// # }
/// ```
pub fn to_dot(prefix: &Prefix, stg: &Stg, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph {name} {{");
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  node [fontname=\"Helvetica\"];");
    for e in prefix.events() {
        let label = format!(
            "e{}\\n{}",
            e.index() + 1,
            stg.transition_name(prefix.event_transition(e))
        );
        let extras = if prefix.is_cutoff(e) {
            ", peripheries=2, style=dashed"
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "  \"e{}\" [shape=box, label=\"{}\"{}];",
            e.index(),
            label,
            extras
        );
    }
    for b in prefix.conditions() {
        let marked = prefix.cond_producer(b).is_none();
        let _ = writeln!(
            out,
            "  \"b{}\" [shape=circle, label=\"{}\", xlabel=\"b{}\"];",
            b.index(),
            if marked { "&bull;" } else { "" },
            b.index() + 1,
        );
    }
    for b in prefix.conditions() {
        if let Some(e) = prefix.cond_producer(b) {
            let _ = writeln!(out, "  \"e{}\" -> \"b{}\";", e.index(), b.index());
        }
        for &e in prefix.cond_consumers(b) {
            let _ = writeln!(out, "  \"b{}\" -> \"e{}\";", b.index(), e.index());
        }
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::UnfoldOptions;
    use stg::gen::vme::vme_read;

    #[test]
    fn dot_has_all_nodes_and_arcs() {
        let stg = vme_read();
        let prefix = Prefix::of_stg(&stg, UnfoldOptions::default()).unwrap();
        let dot = to_dot(&prefix, &stg, "pref");
        assert_eq!(dot.matches("shape=box").count(), prefix.num_events());
        assert_eq!(dot.matches("shape=circle").count(), prefix.num_conditions());
        assert_eq!(dot.matches("peripheries=2").count(), prefix.num_cutoffs());
        // Minimal conditions carry the initial tokens.
        assert_eq!(dot.matches("&bull;").count(), prefix.min_conditions().len());
    }

    #[test]
    fn arcs_match_flow_relation() {
        let stg = vme_read();
        let prefix = Prefix::of_stg(&stg, UnfoldOptions::default()).unwrap();
        let dot = to_dot(&prefix, &stg, "pref");
        let arcs = dot.matches(" -> ").count();
        let expected: usize = prefix
            .conditions()
            .map(|b| {
                usize::from(prefix.cond_producer(b).is_some()) + prefix.cond_consumers(b).len()
            })
            .sum();
        assert_eq!(arcs, expected);
    }
}
