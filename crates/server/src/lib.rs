//! `stgd`: a concurrent STG verification service.
//!
//! This crate turns the library-level checkers of [`csc_core`] into a
//! long-running network service. Clients connect over TCP and speak a
//! newline-delimited JSON protocol ([`protocol`], specified in
//! `docs/SERVER.md`): each line is a `check`, `synthesize`, `stats`
//! or `shutdown` request; `check` responses carry a three-valued
//! verdict with a full resource report, and `synthesize` responses
//! (revision 6) carry the resolved net, the inserted state signals
//! and the derived next-state equations — or the stable
//! `resolve_failed` code. Jobs are scheduled onto a fixed worker pool
//! ([`server`]), and by default each worker decides its job with the
//! racing parallel portfolio (`Engine::Race`) — the unfolding+ILP,
//! explicit and symbolic engines on separate threads sharing one
//! absolute deadline, first conclusive verdict wins, losers
//! cancelled.
//!
//! The [`client`] module is the matching blocking client, used by
//! `stgcheck --server`, the bench harness and the integration tests.
//!
//! The service is built to stay up under abuse and partial failure:
//! admission is bounded globally and per client with load-shedding
//! responses that carry a `retry_after_ms` hint, panicked workers are
//! supervised and replaced (the in-flight job fails with the stable
//! `worker_crashed` code), stalled readers are disconnected instead
//! of wedging workers, and the client retries idempotent jobs with
//! exponential backoff ([`client::RetryPolicy`]). The [`failpoints`]
//! module is the matching fault-injection facility: compiled to
//! no-ops by default, and enabled with `--features failpoints` for
//! the chaos test suite.
//!
//! # Examples
//!
//! ```
//! use server::{spawn, Client, ServerConfig};
//! use server::protocol::BudgetSpec;
//! use csc_core::Property;
//!
//! let handle = spawn(ServerConfig::default()).unwrap();
//! let mut client = Client::connect(handle.addr()).unwrap();
//! let g = stg::to_g_format(&stg::gen::vme::vme_read(), "vme");
//! let response = client
//!     .check("job-0", &g, Property::Csc, None, BudgetSpec::default())
//!     .unwrap();
//! assert_eq!(response.verdict.as_deref(), Some("violated"));
//! handle.shutdown();
//! ```

pub mod cache;
pub mod client;
pub mod failpoints;
pub mod json;
pub mod protocol;
pub mod server;

pub use cache::{ArtifactCache, CacheStats};
pub use client::{CheckResponse, Client, ClientError, RetryPolicy, RetryStats, SynthesizeResponse};
pub use server::{spawn, ServerConfig, ServerHandle};
