//! Minimal JSON tree, parser and single-line emitter.
//!
//! The build environment has no crate registry, so the wire protocol
//! serialises through this hand-rolled module instead of serde. The
//! dialect is plain RFC 8259 with two deliberate simplifications:
//! numbers round-trip through `f64` (the protocol's counters fit
//! comfortably), and objects preserve insertion order in a `Vec`
//! (lookups are linear — protocol objects have < 20 members).

use std::fmt::{self, Write as _};

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object as an ordered member list.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on an object; `None` on other variants or a
    /// missing key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if it is one
    /// and exactly representable. Numbers round-trip through `f64`,
    /// so integers of 2^53 or more may have been rounded during
    /// parsing; they are rejected here rather than silently altered.
    pub fn as_u64(&self) -> Option<u64> {
        const MAX_EXACT: f64 = 9_007_199_254_740_992.0; // 2^53
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n < MAX_EXACT => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Renders the value as compact single-line JSON (the NDJSON
    /// framing of the wire protocol forbids embedded newlines; string
    /// escaping guarantees that).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => {
                if n.is_finite() {
                    let _ = write!(out, "{n}");
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => render_string(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Value::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Self {
        Value::Num(n)
    }
}

impl From<usize> for Value {
    fn from(n: usize) -> Self {
        Value::Num(n as f64)
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Self {
        Value::Num(n as f64)
    }
}

/// `Some(v)` serialises as `v`, `None` as `null`.
pub fn opt(value: Option<impl Into<Value>>) -> Value {
    value.map_or(Value::Null, Into::into)
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON syntax error with a byte offset into the input line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset of the offending character.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document, requiring it to span the whole input
/// (surrounding whitespace allowed).
pub fn parse(input: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_owned(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let c = self.unicode_escape()?;
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // the encoding is valid by construction).
                    let rest = &self.bytes[self.pos..];
                    let len = utf8_len(rest[0]);
                    let chunk = std::str::from_utf8(&rest[..len.min(rest.len())])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(chunk);
                    self.pos += chunk.len();
                }
            }
        }
    }

    /// Parses the 4 hex digits after `\u`, combining surrogate pairs.
    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            // High surrogate: require a following \uXXXX low half.
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let lo = self.hex4()?;
                if (0xDC00..0xE000).contains(&lo) {
                    let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    return char::from_u32(c).ok_or_else(|| self.err("bad surrogate pair"));
                }
            }
            return Err(self.err("lone surrogate"));
        }
        char::from_u32(hi).ok_or_else(|| self.err("bad unicode escape"))
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                _ => return Err(self.err("expected hex digit")),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("-12.5e1").unwrap(), Value::Num(-125.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Value::Str("a\nb".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"op":"check","budget":{"timeout_ms":100},"tags":[1,"x",null]}"#).unwrap();
        assert_eq!(v.get("op").and_then(Value::as_str), Some("check"));
        assert_eq!(
            v.get("budget")
                .and_then(|b| b.get("timeout_ms"))
                .and_then(Value::as_u64),
            Some(100)
        );
        assert_eq!(
            v.get("tags").and_then(Value::as_arr).map(<[Value]>::len),
            Some(3)
        );
    }

    #[test]
    fn unicode_escapes_round_trip() {
        assert_eq!(parse(r#""é""#).unwrap(), Value::Str("é".into()));
        assert_eq!(parse(r#""😀""#).unwrap(), Value::Str("😀".into()));
        assert!(parse(r#""\ud83d""#).is_err(), "lone surrogate rejected");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "", "{", "[1,", "{\"a\"}", "tru", "1 2", "\"\x01\"", "{'a':1}",
        ] {
            assert!(parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn render_round_trips() {
        let v = Value::Obj(vec![
            ("s".into(), Value::Str("a\"b\\c\nd".into())),
            ("n".into(), Value::Num(3.5)),
            ("b".into(), Value::Bool(false)),
            ("z".into(), Value::Null),
            (
                "a".into(),
                Value::Arr(vec![Value::Num(1.0), Value::Str("x".into())]),
            ),
        ]);
        let text = v.render();
        assert!(!text.contains('\n'), "NDJSON framing: no raw newlines");
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn multibyte_strings_survive() {
        let v = parse("\"héllo — 世界\"").unwrap();
        assert_eq!(v.as_str(), Some("héllo — 世界"));
        assert_eq!(parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn as_u64_rejects_integers_that_lost_precision() {
        assert_eq!(
            parse("9007199254740991").unwrap().as_u64(),
            Some((1 << 53) - 1)
        );
        // 2^53 and above may have been rounded by the f64 parse, so
        // they must not silently decode to a nearby integer.
        assert_eq!(parse("9007199254740992").unwrap().as_u64(), None);
        assert_eq!(parse("18446744073709551615").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
    }

    #[test]
    fn opt_maps_none_to_null() {
        assert_eq!(opt(None::<u64>), Value::Null);
        assert_eq!(opt(Some(3u64)), Value::Num(3.0));
    }
}
