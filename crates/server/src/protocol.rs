//! The `stgd` wire protocol: newline-delimited JSON over TCP.
//!
//! Every line the client sends is one request object; every line the
//! server sends back is one response object. Responses to `check`
//! requests arrive in *completion* order (the worker pool races jobs
//! concurrently), so clients correlate them by the `id` they chose.
//! The full schema is specified in `docs/SERVER.md`.

use std::fmt;
use std::time::Duration;

use csc_core::{
    Budget, CheckRun, Engine, ExhaustionReason, Property, ResourceReport, Verdict, Witness,
};
use stg::Stg;

use crate::json::{self, opt, Value};

/// One decoded client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Decide a property of one STG under a budget.
    Check(CheckRequest),
    /// Run the full synthesis pipeline on one STG under a budget:
    /// lint → CSC check → resolve by state-signal insertion →
    /// re-check → next-state equations.
    Synthesize(SynthesizeRequest),
    /// Report service counters.
    Stats,
    /// Begin graceful shutdown: drain in-flight jobs, then exit.
    Shutdown,
}

/// The payload of a `check` request.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckRequest {
    /// Client-chosen correlation id, echoed in the response.
    pub id: String,
    /// The STG in `.g` format.
    pub stg_g: String,
    /// The property to decide.
    pub property: Property,
    /// Engine override; `None` uses the server default (the racing
    /// portfolio).
    pub engine: Option<Engine>,
    /// Per-job resource budget.
    pub budget: BudgetSpec,
}

/// The payload of a revision-6 `synthesize` request.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthesizeRequest {
    /// Client-chosen correlation id, echoed in the response.
    pub id: String,
    /// The STG in `.g` format.
    pub stg_g: String,
    /// Cap on inserted state signals; `None` uses the server default.
    pub max_signals: Option<usize>,
    /// Engine override for the check/re-check stages; `None` uses the
    /// server default (the racing portfolio).
    pub engine: Option<Engine>,
    /// Per-job resource budget.
    pub budget: BudgetSpec,
}

/// The declarative budget of one job (a [`Budget`] without the
/// cancellation token, which the server attaches per job).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BudgetSpec {
    /// Wall-clock allowance in milliseconds.
    pub timeout_ms: Option<u64>,
    /// Unfolding event cap.
    pub max_events: Option<usize>,
    /// Explicit state cap.
    pub max_states: Option<usize>,
    /// Solver propagation cap.
    pub max_solver_steps: Option<u64>,
    /// BDD node cap.
    pub max_bdd_nodes: Option<usize>,
}

impl BudgetSpec {
    /// Materialises the spec as an engine [`Budget`] (without a
    /// cancellation token).
    pub fn to_budget(self) -> Budget {
        Budget {
            deadline: self.timeout_ms.map(Duration::from_millis),
            max_events: self.max_events,
            max_solver_steps: self.max_solver_steps,
            max_states: self.max_states,
            max_bdd_nodes: self.max_bdd_nodes,
            cancel: None,
        }
    }
}

/// A protocol-level decoding failure (malformed JSON, unknown op,
/// missing field). The offending request — when it carried an id —
/// still gets an error *response*, not a dropped connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError {
    /// The client-supplied id, when one could be recovered.
    pub id: Option<String>,
    /// What was wrong with the request.
    pub message: String,
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for ProtocolError {}

/// Parses the engine name used on the wire and in `stgcheck
/// --engine`.
pub fn engine_from_str(name: &str) -> Option<Engine> {
    match name {
        "unfolding" | "unfolding-ilp" => Some(Engine::UnfoldingIlp),
        "explicit" => Some(Engine::ExplicitStateGraph),
        "symbolic" => Some(Engine::SymbolicBdd),
        "portfolio" => Some(Engine::Portfolio),
        "race" => Some(Engine::Race),
        "cegar" => Some(Engine::Cegar),
        _ => None,
    }
}

/// Parses the property name used on the wire.
pub fn property_from_str(name: &str) -> Option<Property> {
    match name {
        "usc" => Some(Property::Usc),
        "csc" => Some(Property::Csc),
        "normalcy" => Some(Property::Normalcy),
        _ => None,
    }
}

/// The wire name of a property.
pub fn property_name(property: Property) -> &'static str {
    match property {
        Property::Usc => "usc",
        Property::Csc => "csc",
        Property::Normalcy => "normalcy",
    }
}

/// Decodes one request line.
///
/// # Errors
///
/// [`ProtocolError`] on malformed JSON, an unknown `op`, or a missing
/// or ill-typed field; the error carries the request id when one was
/// present so the server can still address the response.
pub fn decode_request(line: &str) -> Result<Request, ProtocolError> {
    let value = json::parse(line).map_err(|e| ProtocolError {
        id: None,
        message: format!("malformed JSON: {e}"),
    })?;
    let id = value.get("id").and_then(Value::as_str).map(str::to_owned);
    let fail = |message: String| ProtocolError {
        id: id.clone(),
        message,
    };
    let op = value
        .get("op")
        .and_then(Value::as_str)
        .ok_or_else(|| fail("missing `op`".to_owned()))?;
    match op {
        "stats" => Ok(Request::Stats),
        "shutdown" => Ok(Request::Shutdown),
        "check" => {
            let id = id
                .clone()
                .ok_or_else(|| fail("check: missing `id`".to_owned()))?;
            let stg_g = value
                .get("stg")
                .and_then(Value::as_str)
                .ok_or_else(|| fail("check: missing `stg` (.g text)".to_owned()))?
                .to_owned();
            let property = value
                .get("property")
                .and_then(Value::as_str)
                .ok_or_else(|| fail("check: missing `property`".to_owned()))
                .and_then(|p| {
                    property_from_str(p)
                        .ok_or_else(|| fail(format!("check: unknown property `{p}`")))
                })?;
            let engine = match value.get("engine").filter(|v| !v.is_null()) {
                None => None,
                Some(v) => {
                    let name = v
                        .as_str()
                        .ok_or_else(|| fail("check: `engine` must be a string".to_owned()))?;
                    Some(engine_from_str(name).ok_or_else(|| {
                        fail(format!(
                            "check: unknown engine `{name}` \
                             (unfolding|explicit|symbolic|portfolio|race|cegar)"
                        ))
                    })?)
                }
            };
            let budget = decode_budget(value.get("budget"), &fail)?;
            Ok(Request::Check(CheckRequest {
                id,
                stg_g,
                property,
                engine,
                budget,
            }))
        }
        "synthesize" => {
            let id = id
                .clone()
                .ok_or_else(|| fail("synthesize: missing `id`".to_owned()))?;
            let stg_g = value
                .get("stg")
                .and_then(Value::as_str)
                .ok_or_else(|| fail("synthesize: missing `stg` (.g text)".to_owned()))?
                .to_owned();
            let engine = decode_engine(&value, &fail)?;
            let max_signals = match value.get("max_signals").filter(|v| !v.is_null()) {
                None => None,
                Some(v) => Some(v.as_u64().map(|n| n as usize).ok_or_else(|| {
                    fail("synthesize: `max_signals` must be a non-negative integer".to_owned())
                })?),
            };
            let budget = decode_budget(value.get("budget"), &fail)?;
            Ok(Request::Synthesize(SynthesizeRequest {
                id,
                stg_g,
                max_signals,
                engine,
                budget,
            }))
        }
        other => Err(fail(format!("unknown op `{other}`"))),
    }
}

fn decode_engine(
    value: &Value,
    fail: &dyn Fn(String) -> ProtocolError,
) -> Result<Option<Engine>, ProtocolError> {
    match value.get("engine").filter(|v| !v.is_null()) {
        None => Ok(None),
        Some(v) => {
            let name = v
                .as_str()
                .ok_or_else(|| fail("`engine` must be a string".to_owned()))?;
            Ok(Some(engine_from_str(name).ok_or_else(|| {
                fail(format!(
                    "unknown engine `{name}` \
                     (unfolding|explicit|symbolic|portfolio|race|cegar)"
                ))
            })?))
        }
    }
}

fn decode_budget(
    value: Option<&Value>,
    fail: &dyn Fn(String) -> ProtocolError,
) -> Result<BudgetSpec, ProtocolError> {
    let mut spec = BudgetSpec::default();
    let Some(value) = value.filter(|v| !v.is_null()) else {
        return Ok(spec);
    };
    if !matches!(value, Value::Obj(_)) {
        return Err(fail("check: `budget` must be an object".to_owned()));
    }
    let field = |key: &str| -> Result<Option<u64>, ProtocolError> {
        match value.get(key).filter(|v| !v.is_null()) {
            None => Ok(None),
            Some(v) => v.as_u64().map(Some).ok_or_else(|| {
                fail(format!(
                    "check: `budget.{key}` must be a non-negative integer below 2^53"
                ))
            }),
        }
    };
    spec.timeout_ms = field("timeout_ms")?;
    spec.max_events = field("max_events")?.map(|n| n as usize);
    spec.max_states = field("max_states")?.map(|n| n as usize);
    spec.max_solver_steps = field("max_solver_steps")?;
    spec.max_bdd_nodes = field("max_bdd_nodes")?.map(|n| n as usize);
    Ok(spec)
}

/// Encodes a `check` request line (the client side of
/// [`decode_request`]).
pub fn encode_check_request(request: &CheckRequest) -> String {
    let mut members = vec![
        ("op".to_owned(), Value::from("check")),
        ("id".to_owned(), Value::from(request.id.as_str())),
        ("stg".to_owned(), Value::from(request.stg_g.as_str())),
        (
            "property".to_owned(),
            Value::from(property_name(request.property)),
        ),
    ];
    if let Some(engine) = request.engine {
        members.push(("engine".to_owned(), Value::from(engine.name())));
    }
    if let Some(budget) = budget_member(request.budget) {
        members.push(budget);
    }
    Value::Obj(members).render()
}

/// Encodes a non-default budget spec as the `budget` member.
fn budget_member(b: BudgetSpec) -> Option<(String, Value)> {
    if b == BudgetSpec::default() {
        return None;
    }
    Some((
        "budget".to_owned(),
        Value::Obj(
            [
                ("timeout_ms", b.timeout_ms),
                ("max_events", b.max_events.map(|n| n as u64)),
                ("max_states", b.max_states.map(|n| n as u64)),
                ("max_solver_steps", b.max_solver_steps),
                ("max_bdd_nodes", b.max_bdd_nodes.map(|n| n as u64)),
            ]
            .into_iter()
            .filter_map(|(k, v)| v.map(|n| (k.to_owned(), Value::from(n))))
            .collect(),
        ),
    ))
}

/// Encodes a `synthesize` request line (the client side of
/// [`decode_request`]).
pub fn encode_synthesize_request(request: &SynthesizeRequest) -> String {
    let mut members = vec![
        ("op".to_owned(), Value::from("synthesize")),
        ("id".to_owned(), Value::from(request.id.as_str())),
        ("stg".to_owned(), Value::from(request.stg_g.as_str())),
    ];
    if let Some(n) = request.max_signals {
        members.push(("max_signals".to_owned(), Value::from(n as u64)));
    }
    if let Some(engine) = request.engine {
        members.push(("engine".to_owned(), Value::from(engine.name())));
    }
    if let Some(budget) = budget_member(request.budget) {
        members.push(budget);
    }
    Value::Obj(members).render()
}

/// The protocol revision stamped on check responses. Revision 2
/// added the `proto` field itself and the optional `report.bdd`
/// stats object; revision-1 responses carry neither, so clients
/// treat an absent `proto` as 1. Revision 3 added the optional
/// `report.lint` summary object and the `lint_rejected` admission
/// error (a `status: error` response with `code: "lint_rejected"`
/// and a `diagnostics` array). Revision 4 added load-shedding
/// responses (`code: "queue_full"` / `"over_quota"` carrying a
/// `retry_after_ms` backoff hint), the `worker_crashed` error code
/// for jobs whose worker panicked (safe to resubmit — jobs are
/// idempotent), and the `overload`/`supervisor` blocks in `stats`;
/// older clients that ignore unknown members keep working unchanged.
/// Revision 5 added the `cegar` engine (state-equation CEGAR, no
/// prefix and no BDDs), its optional `report.cegar` counter block
/// (iterations, cuts, branch nodes, …), and the `unsupported` reason
/// code for property/engine combinations an engine cannot decide.
/// Revision 6 added the `synthesize` op (lint → check → resolve →
/// re-check → equations in one job): success responses carry the
/// resolved `.g` text, the inserted signal names, the next-state
/// `equations`, per-stage report blocks (`stages`, `resolve`,
/// `recheck_prefix_events_built`), and failed resolutions are
/// reported with the stable `resolve_failed` error code (permanent —
/// clients must not retry it). Revision 7 added the optional
/// `report.unfold` counter block describing how the finite complete
/// prefix was constructed (`pe_discovered`, `pe_commits`, `workers`,
/// `par_ms`, `serial_ms`) and the server's `--unfold-threads` knob;
/// the prefix itself is bit-identical for every worker count, so the
/// block is purely observational and older clients that ignore
/// unknown members keep working unchanged.
/// Revision 8 added the optional `report.structure` block describing
/// the structural net-class pass that now fronts every check (the
/// detected `class` plus the individual class flags, whether the
/// structural concurrency relation is `exact`, the concurrent
/// place-pair and locked signal-pair counts, and `proved` — set when
/// the class-gated fast path decided the verdict with no engine run),
/// and the `candidates_generated` / `candidates_pruned` counters in
/// the synthesize response's `resolve` block (conflict-core-guided
/// candidate generation and its structural-concurrency pruning).
/// The block is null for jobs that skipped the pass, so older clients
/// that ignore unknown members keep working unchanged.
pub const PROTO_VERSION: u64 = 8;

/// Encodes the verdict response for a completed check.
pub fn encode_check_response(id: &str, stg: &Stg, run: &CheckRun) -> String {
    let (verdict, reason, witness) = match &run.verdict {
        Verdict::Holds => ("holds", Value::Null, Value::Null),
        Verdict::Violated(w) => ("violated", Value::Null, encode_witness(stg, w)),
        Verdict::Unknown(reason) => ("unknown", Value::from(reason_code(reason)), Value::Null),
    };
    Value::Obj(vec![
        ("id".to_owned(), Value::from(id)),
        ("proto".to_owned(), Value::from(PROTO_VERSION)),
        ("status".to_owned(), Value::from("ok")),
        ("verdict".to_owned(), Value::from(verdict)),
        ("reason".to_owned(), reason),
        ("witness".to_owned(), witness),
        ("engine".to_owned(), Value::from(run.report.engine)),
        ("winner".to_owned(), opt(run.report.winner)),
        ("report".to_owned(), encode_report(&run.report)),
    ])
    .render()
}

/// Encodes the revision-6 response for a completed `synthesize` job.
///
/// `Clean`/`Resolved` outcomes are `status: ok` with the resolved
/// `.g` text (for `Resolved`), the inserted signals, the next-state
/// equations, and per-stage report blocks. An `Unresolved` outcome is
/// a `status: error` response with the stable `resolve_failed` code —
/// a *permanent* failure (resubmitting the same net resolves the same
/// way), so clients must not retry it.
pub fn encode_synthesize_response(id: &str, run: &resolve::SynthesisRun) -> String {
    use csc_core::PipelineOutcome;
    let stages = Value::Arr(
        run.pipeline
            .report
            .stages
            .iter()
            .map(|s| {
                Value::Obj(vec![
                    ("stage".to_owned(), Value::from(s.stage)),
                    (
                        "elapsed_ms".to_owned(),
                        Value::from(s.elapsed.as_secs_f64() * 1e3),
                    ),
                    ("detail".to_owned(), Value::from(s.detail.as_str())),
                ])
            })
            .collect(),
    );
    let resolve_block = match &run.resolve_report {
        None => Value::Null,
        Some(r) => Value::Obj(vec![
            (
                "initial_conflicts".to_owned(),
                Value::from(r.initial_conflicts as u64),
            ),
            (
                "candidates_tried".to_owned(),
                Value::from(r.candidates_tried as u64),
            ),
            (
                "candidates_broken".to_owned(),
                Value::from(r.candidates_broken as u64),
            ),
            (
                "candidates_generated".to_owned(),
                Value::from(r.candidates_generated as u64),
            ),
            (
                "candidates_pruned".to_owned(),
                Value::from(r.candidates_pruned as u64),
            ),
            ("rounds".to_owned(), Value::from(r.rounds.len() as u64)),
            ("warm_reuses".to_owned(), Value::from(r.warm_reuses as u64)),
            (
                "verify_prefix_events_built".to_owned(),
                opt(r.verify_prefix_events_built),
            ),
            (
                "resolve_ms".to_owned(),
                Value::from(r.elapsed.as_secs_f64() * 1e3),
            ),
        ]),
    };
    let equations_value = |equations: &[csc_core::SignalEquation]| {
        Value::Arr(
            equations
                .iter()
                .map(|e| {
                    Value::Obj(vec![
                        ("signal".to_owned(), Value::from(e.signal.as_str())),
                        ("equation".to_owned(), Value::from(e.equation.as_str())),
                        ("monotonic".to_owned(), Value::from(e.monotonic)),
                    ])
                })
                .collect(),
        )
    };
    match &run.pipeline.outcome {
        PipelineOutcome::Unresolved { remaining, reason } => Value::Obj(vec![
            ("id".to_owned(), Value::from(id)),
            ("proto".to_owned(), Value::from(PROTO_VERSION)),
            ("status".to_owned(), Value::from("error")),
            ("code".to_owned(), Value::from("resolve_failed")),
            (
                "error".to_owned(),
                Value::from(format!("synthesis failed: {reason}").as_str()),
            ),
            ("remaining".to_owned(), opt(remaining.map(|n| n as u64))),
            ("stages".to_owned(), stages),
            ("resolve".to_owned(), resolve_block),
        ])
        .render(),
        PipelineOutcome::Clean { equations } => Value::Obj(vec![
            ("id".to_owned(), Value::from(id)),
            ("proto".to_owned(), Value::from(PROTO_VERSION)),
            ("status".to_owned(), Value::from("ok")),
            ("outcome".to_owned(), Value::from("clean")),
            ("inserted".to_owned(), Value::Arr(Vec::new())),
            ("resolved_g".to_owned(), Value::Null),
            ("equations".to_owned(), equations_value(equations)),
            ("stages".to_owned(), stages),
            ("resolve".to_owned(), resolve_block),
            (
                "recheck_prefix_events_built".to_owned(),
                opt(run.pipeline.report.recheck_prefix_events_built),
            ),
            (
                "elapsed_ms".to_owned(),
                Value::from(run.pipeline.report.elapsed.as_secs_f64() * 1e3),
            ),
        ])
        .render(),
        PipelineOutcome::Resolved {
            stg,
            inserted,
            equations,
        } => Value::Obj(vec![
            ("id".to_owned(), Value::from(id)),
            ("proto".to_owned(), Value::from(PROTO_VERSION)),
            ("status".to_owned(), Value::from("ok")),
            ("outcome".to_owned(), Value::from("resolved")),
            (
                "inserted".to_owned(),
                Value::Arr(inserted.iter().map(|s| Value::from(s.as_str())).collect()),
            ),
            (
                "resolved_g".to_owned(),
                Value::from(stg::to_g_format(stg, "resolved").as_str()),
            ),
            ("equations".to_owned(), equations_value(equations)),
            ("stages".to_owned(), stages),
            ("resolve".to_owned(), resolve_block),
            (
                "recheck_prefix_events_built".to_owned(),
                opt(run.pipeline.report.recheck_prefix_events_built),
            ),
            (
                "elapsed_ms".to_owned(),
                Value::from(run.pipeline.report.elapsed.as_secs_f64() * 1e3),
            ),
        ])
        .render(),
    }
}

/// Encodes an error response (parse failure, engine failure, protocol
/// violation). `id` is `null` when the request never yielded one.
pub fn encode_error_response(id: Option<&str>, message: &str) -> String {
    Value::Obj(vec![
        ("id".to_owned(), opt(id)),
        ("status".to_owned(), Value::from("error")),
        ("error".to_owned(), Value::from(message)),
    ])
    .render()
}

/// Encodes an error response carrying a stable machine-readable
/// `code` (e.g. `queue_full`) alongside the human-readable message,
/// so clients can branch on the code without parsing prose.
pub fn encode_error_response_with_code(id: Option<&str>, code: &str, message: &str) -> String {
    Value::Obj(vec![
        ("id".to_owned(), opt(id)),
        ("status".to_owned(), Value::from("error")),
        ("code".to_owned(), Value::from(code)),
        ("error".to_owned(), Value::from(message)),
    ])
    .render()
}

/// Encodes the revision-4 load-shedding rejection: an error response
/// with a stable code (`queue_full` or `over_quota`) plus a
/// `retry_after_ms` hint sized from the server's observed latency,
/// so backoff-aware clients wait roughly one drain interval instead
/// of guessing.
pub fn encode_overload_response(
    id: Option<&str>,
    code: &str,
    message: &str,
    retry_after_ms: u64,
) -> String {
    Value::Obj(vec![
        ("id".to_owned(), opt(id)),
        ("proto".to_owned(), Value::from(PROTO_VERSION)),
        ("status".to_owned(), Value::from("error")),
        ("code".to_owned(), Value::from(code)),
        ("error".to_owned(), Value::from(message)),
        ("retry_after_ms".to_owned(), Value::from(retry_after_ms)),
    ])
    .render()
}

/// Encodes the revision-3 admission rejection: an error response
/// with the stable `lint_rejected` code plus the lint diagnostics
/// as structured objects, so clients can surface line/column spans
/// without re-linting locally.
pub fn encode_lint_rejected(id: Option<&str>, report: &lint::LintReport) -> String {
    Value::Obj(vec![
        ("id".to_owned(), opt(id)),
        ("status".to_owned(), Value::from("error")),
        ("code".to_owned(), Value::from("lint_rejected")),
        (
            "error".to_owned(),
            Value::from(
                format!(
                    "input rejected by lint: {} error(s), {} warning(s)",
                    report.errors(),
                    report.warnings()
                )
                .as_str(),
            ),
        ),
        (
            "diagnostics".to_owned(),
            Value::Arr(report.diagnostics.iter().map(encode_diagnostic).collect()),
        ),
    ])
    .render()
}

fn encode_diagnostic(d: &lint::Diagnostic) -> Value {
    Value::Obj(vec![
        ("code".to_owned(), Value::from(d.code.to_string().as_str())),
        (
            "severity".to_owned(),
            Value::from(d.severity().to_string().as_str()),
        ),
        (
            "line".to_owned(),
            d.span.map_or(Value::Null, |s| Value::from(s.line as u64)),
        ),
        (
            "col".to_owned(),
            d.span.map_or(Value::Null, |s| Value::from(s.col as u64)),
        ),
        ("object".to_owned(), opt(d.object.as_deref())),
        ("message".to_owned(), Value::from(d.message.as_str())),
    ])
}

/// The stable machine-readable code of an exhaustion reason (the
/// human-readable sentence is available via `Display`).
pub fn reason_code(reason: &ExhaustionReason) -> &'static str {
    match reason {
        ExhaustionReason::Cancelled => "cancelled",
        ExhaustionReason::DeadlineExpired => "deadline-expired",
        ExhaustionReason::EventLimit(_) => "event-limit",
        ExhaustionReason::SolverStepLimit(_) => "solver-step-limit",
        ExhaustionReason::StateLimit(_) => "state-limit",
        ExhaustionReason::BddNodeLimit(_) => "bdd-node-limit",
        ExhaustionReason::Unsupported(_) => "unsupported",
    }
}

fn encode_report(report: &ResourceReport) -> Value {
    Value::Obj(vec![
        (
            "elapsed_ms".to_owned(),
            Value::from(report.elapsed.as_secs_f64() * 1e3),
        ),
        ("prefix_events".to_owned(), opt(report.prefix_events)),
        (
            "prefix_events_built".to_owned(),
            opt(report.prefix_events_built),
        ),
        (
            "prefix_conditions".to_owned(),
            opt(report.prefix_conditions),
        ),
        ("solver_steps".to_owned(), opt(report.solver_steps)),
        ("states".to_owned(), opt(report.states)),
        ("bdd_nodes".to_owned(), opt(report.bdd_nodes)),
        (
            "lint".to_owned(),
            match &report.lint {
                None => Value::Null,
                Some(summary) => Value::Obj(vec![
                    ("proved".to_owned(), Value::from(summary.proved)),
                    ("errors".to_owned(), Value::from(summary.errors)),
                    ("warnings".to_owned(), Value::from(summary.warnings)),
                    ("usc_proved".to_owned(), Value::from(summary.usc_proved)),
                    (
                        "all_consistent".to_owned(),
                        Value::from(summary.all_consistent),
                    ),
                ]),
            },
        ),
        (
            "structure".to_owned(),
            match &report.structure {
                None => Value::Null,
                Some(s) => Value::Obj(vec![
                    ("class".to_owned(), Value::from(s.class())),
                    ("marked_graph".to_owned(), Value::from(s.marked_graph)),
                    ("state_machine".to_owned(), Value::from(s.state_machine)),
                    ("free_choice".to_owned(), Value::from(s.free_choice)),
                    (
                        "extended_free_choice".to_owned(),
                        Value::from(s.extended_free_choice),
                    ),
                    (
                        "reduced_asymmetric_choice".to_owned(),
                        Value::from(s.reduced_asymmetric_choice),
                    ),
                    ("exact".to_owned(), Value::from(s.exact)),
                    (
                        "concurrent_place_pairs".to_owned(),
                        Value::from(s.concurrent_place_pairs),
                    ),
                    (
                        "locked_signal_pairs".to_owned(),
                        Value::from(s.locked_signal_pairs),
                    ),
                    ("signal_pairs".to_owned(), Value::from(s.signal_pairs)),
                    ("proved".to_owned(), Value::from(s.proved)),
                ]),
            },
        ),
        (
            "cegar".to_owned(),
            match &report.cegar {
                None => Value::Null,
                Some(stats) => Value::Obj(vec![
                    ("iterations".to_owned(), Value::from(stats.iterations)),
                    ("cuts".to_owned(), Value::from(stats.cuts)),
                    ("branch_nodes".to_owned(), Value::from(stats.branch_nodes)),
                    ("lp_solves".to_owned(), Value::from(stats.lp_solves)),
                    ("targets".to_owned(), Value::from(stats.targets)),
                    (
                        "targets_closed".to_owned(),
                        Value::from(stats.targets_closed),
                    ),
                    (
                        "reduced_places".to_owned(),
                        Value::from(stats.reduced_places),
                    ),
                ]),
            },
        ),
        (
            "unfold".to_owned(),
            match &report.unfold {
                None => Value::Null,
                Some(stats) => Value::Obj(vec![
                    ("pe_discovered".to_owned(), Value::from(stats.pe_discovered)),
                    ("pe_commits".to_owned(), Value::from(stats.pe_commits)),
                    ("workers".to_owned(), Value::from(u64::from(stats.workers))),
                    (
                        "par_ms".to_owned(),
                        Value::from(stats.par_time.as_secs_f64() * 1e3),
                    ),
                    (
                        "serial_ms".to_owned(),
                        Value::from(stats.serial_time.as_secs_f64() * 1e3),
                    ),
                ]),
            },
        ),
        (
            "bdd".to_owned(),
            match &report.bdd {
                None => Value::Null,
                Some(stats) => Value::Obj(vec![
                    ("live_nodes".to_owned(), Value::from(stats.live_nodes)),
                    (
                        "peak_live_nodes".to_owned(),
                        Value::from(stats.peak_live_nodes),
                    ),
                    ("gc_runs".to_owned(), Value::from(stats.gc_runs)),
                    (
                        "reorder_passes".to_owned(),
                        Value::from(stats.reorder_passes),
                    ),
                    (
                        "order".to_owned(),
                        Value::Arr(
                            stats
                                .order
                                .iter()
                                .map(|&v| Value::from(u64::from(v)))
                                .collect(),
                        ),
                    ),
                ]),
            },
        ),
    ])
}

/// Serialises a witness uniformly across engines: every violated
/// verdict carries a `kind` plus kind-specific evidence.
fn encode_witness(stg: &Stg, witness: &Witness) -> Value {
    let names = |seq: &[petri::TransitionId]| {
        Value::Arr(
            seq.iter()
                .map(|&t| Value::from(stg.transition_name(t)))
                .collect(),
        )
    };
    match witness {
        Witness::Conflict(w) => Value::Obj(vec![
            (
                "kind".to_owned(),
                Value::from(match w.kind {
                    csc_core::ConflictKind::Usc => "usc-conflict",
                    csc_core::ConflictKind::Csc => "csc-conflict",
                }),
            ),
            ("code".to_owned(), Value::from(w.code.to_string())),
            ("path1".to_owned(), names(&w.sequence1)),
            ("path2".to_owned(), names(&w.sequence2)),
            ("marking1".to_owned(), Value::from(w.marking1.to_string())),
            ("marking2".to_owned(), Value::from(w.marking2.to_string())),
        ]),
        Witness::Normalcy(report) => Value::Obj(vec![
            ("kind".to_owned(), Value::from("normalcy")),
            (
                "violations".to_owned(),
                Value::Arr(
                    report
                        .outcomes
                        .iter()
                        .filter(|o| !o.is_normal())
                        .map(|o| Value::from(stg.signal_name(o.signal)))
                        .collect(),
                ),
            ),
        ]),
        Witness::States(pair) => Value::Obj(vec![
            ("kind".to_owned(), Value::from("states")),
            ("marking1".to_owned(), Value::from(pair.0.to_string())),
            ("marking2".to_owned(), Value::from(pair.1.to_string())),
        ]),
        Witness::Unwitnessed => Value::Obj(vec![("kind".to_owned(), Value::from("unwitnessed"))]),
        // `Witness` is non_exhaustive upstream.
        _ => Value::Obj(vec![("kind".to_owned(), Value::from("other"))]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stg::gen::vme::vme_read;

    #[test]
    fn check_request_round_trips() {
        let request = CheckRequest {
            id: "job-1".to_owned(),
            stg_g: stg::to_g_format(&vme_read(), "vme"),
            property: Property::Csc,
            engine: Some(Engine::Race),
            budget: BudgetSpec {
                timeout_ms: Some(250),
                max_events: Some(1000),
                ..Default::default()
            },
        };
        let line = encode_check_request(&request);
        assert!(!line.contains('\n'), "NDJSON framing");
        let decoded = decode_request(&line).unwrap();
        assert_eq!(decoded, Request::Check(request));
    }

    #[test]
    fn synthesize_request_round_trips() {
        let request = SynthesizeRequest {
            id: "syn-1".to_owned(),
            stg_g: stg::to_g_format(&vme_read(), "vme"),
            max_signals: Some(2),
            engine: Some(Engine::UnfoldingIlp),
            budget: BudgetSpec {
                timeout_ms: Some(5000),
                ..Default::default()
            },
        };
        let line = encode_synthesize_request(&request);
        assert!(!line.contains('\n'), "NDJSON framing");
        let decoded = decode_request(&line).unwrap();
        assert_eq!(decoded, Request::Synthesize(request));
    }

    #[test]
    fn synthesize_responses_carry_resolution_and_stage_blocks() {
        let stg = vme_read();
        let run = resolve::synthesize(&stg, &resolve::SynthesisOptions::default(), None).unwrap();
        let line = encode_synthesize_response("syn-2", &run);
        let v = json::parse(&line).unwrap();
        assert_eq!(v.get("status").and_then(Value::as_str), Some("ok"));
        assert_eq!(v.get("proto").and_then(Value::as_u64), Some(PROTO_VERSION));
        assert_eq!(v.get("outcome").and_then(Value::as_str), Some("resolved"));
        let inserted = v.get("inserted").expect("inserted present");
        assert!(matches!(inserted, Value::Arr(items) if items.len() == 1));
        // The resolved net round-trips through the wire as .g text.
        let g = v
            .get("resolved_g")
            .and_then(Value::as_str)
            .expect("resolved .g");
        let resolved = stg::parse_bytes(g.as_bytes()).unwrap();
        assert_eq!(resolved.num_signals(), stg.num_signals() + 1);
        let Some(Value::Arr(equations)) = v.get("equations") else {
            panic!("equations present");
        };
        assert!(!equations.is_empty());
        let Some(Value::Arr(stages)) = v.get("stages") else {
            panic!("stages present");
        };
        let names: Vec<_> = stages
            .iter()
            .filter_map(|s| s.get("stage").and_then(Value::as_str))
            .collect();
        assert_eq!(names, ["lint", "check", "resolve", "recheck", "equations"]);
        // Incremental re-verification on the wire: the re-check
        // reused the resolver's prefix.
        assert_eq!(
            v.get("recheck_prefix_events_built").and_then(Value::as_u64),
            Some(0)
        );
        let resolve = v.get("resolve").expect("resolve block present");
        assert!(!resolve.is_null());
        // Revision 8: the guided-generation counters are always
        // present (zero when guidance never fired).
        assert!(resolve
            .get("candidates_generated")
            .and_then(Value::as_u64)
            .is_some());
        assert!(resolve
            .get("candidates_pruned")
            .and_then(Value::as_u64)
            .is_some());
    }

    #[test]
    fn failed_synthesis_uses_the_stable_resolve_failed_code() {
        let stg = vme_read();
        let options = resolve::SynthesisOptions {
            resolver: resolve::ResolverOptions {
                max_signals: 0,
                ..Default::default()
            },
            ..Default::default()
        };
        let run = resolve::synthesize(&stg, &options, None).unwrap();
        let line = encode_synthesize_response("syn-3", &run);
        let v = json::parse(&line).unwrap();
        assert_eq!(v.get("status").and_then(Value::as_str), Some("error"));
        assert_eq!(
            v.get("code").and_then(Value::as_str),
            Some("resolve_failed")
        );
        assert!(v
            .get("remaining")
            .and_then(Value::as_u64)
            .is_some_and(|n| n > 0));
    }

    #[test]
    fn stats_and_shutdown_ops_decode() {
        assert_eq!(decode_request(r#"{"op":"stats"}"#).unwrap(), Request::Stats);
        assert_eq!(
            decode_request(r#"{"op":"shutdown"}"#).unwrap(),
            Request::Shutdown
        );
    }

    #[test]
    fn malformed_requests_keep_the_id_when_present() {
        let err = decode_request(r#"{"op":"check","id":"j7"}"#).unwrap_err();
        assert_eq!(err.id.as_deref(), Some("j7"));
        assert!(err.message.contains("stg"));
        let err = decode_request("not json").unwrap_err();
        assert_eq!(err.id, None);
        let err = decode_request(r#"{"op":"fly"}"#).unwrap_err();
        assert!(err.message.contains("unknown op"));
        let err = decode_request(r#"{"op":"check","id":"x","stg":"","property":"csc","budget":3}"#)
            .unwrap_err();
        assert!(err.message.contains("budget"));
    }

    #[test]
    fn responses_carry_verdict_and_report() {
        let stg = vme_read();
        let run = csc_core::CheckRequest::new(&stg, Property::Csc)
            .engine(Engine::UnfoldingIlp)
            .run()
            .unwrap();
        let line = encode_check_response("j1", &stg, &run);
        let v = json::parse(&line).unwrap();
        assert_eq!(v.get("id").and_then(Value::as_str), Some("j1"));
        assert_eq!(v.get("proto").and_then(Value::as_u64), Some(PROTO_VERSION));
        assert_eq!(v.get("verdict").and_then(Value::as_str), Some("violated"));
        let witness = v.get("witness").expect("witness present");
        assert_eq!(
            witness.get("kind").and_then(Value::as_str),
            Some("csc-conflict")
        );
        assert_eq!(witness.get("code").and_then(Value::as_str), Some("10110"));
        assert!(v
            .get("report")
            .and_then(|r| r.get("prefix_events"))
            .and_then(Value::as_u64)
            .is_some());
        // The unfolding engine never touched the symbolic stage, so
        // the revision-2 `bdd` member is present but null.
        assert!(v
            .get("report")
            .and_then(|r| r.get("bdd"))
            .is_some_and(Value::is_null));
    }

    #[test]
    fn symbolic_responses_carry_bdd_manager_stats() {
        let stg = vme_read();
        let run = csc_core::CheckRequest::new(&stg, Property::Csc)
            .engine(Engine::SymbolicBdd)
            .run()
            .unwrap();
        let line = encode_check_response("j9", &stg, &run);
        let v = json::parse(&line).unwrap();
        let bdd = v
            .get("report")
            .and_then(|r| r.get("bdd"))
            .expect("bdd stats present");
        assert!(bdd
            .get("peak_live_nodes")
            .and_then(Value::as_u64)
            .is_some_and(|n| n > 0));
        assert!(bdd
            .get("live_nodes")
            .and_then(Value::as_u64)
            .is_some_and(|n| n > 0));
        assert!(bdd.get("gc_runs").and_then(Value::as_u64).is_some());
        assert!(bdd.get("reorder_passes").and_then(Value::as_u64).is_some());
        let order = bdd.get("order").expect("final variable order present");
        assert!(matches!(order, Value::Arr(vars) if !vars.is_empty()));
    }

    #[test]
    fn cegar_responses_carry_the_revision_5_counter_block() {
        let stg = vme_read();
        let run = csc_core::CheckRequest::new(&stg, Property::Usc)
            .engine(Engine::Cegar)
            .run()
            .unwrap();
        let line = encode_check_response("j10", &stg, &run);
        let v = json::parse(&line).unwrap();
        assert_eq!(v.get("engine").and_then(Value::as_str), Some("cegar"));
        // vme_read has a real USC conflict: the engine refutes with a
        // concrete state pair and no prefix or BDD work at all.
        assert_eq!(v.get("verdict").and_then(Value::as_str), Some("violated"));
        let witness = v.get("witness").expect("witness present");
        assert_eq!(witness.get("kind").and_then(Value::as_str), Some("states"));
        let report = v.get("report").expect("report present");
        assert_eq!(
            report.get("prefix_events_built").and_then(Value::as_u64),
            Some(0)
        );
        assert!(report.get("bdd_nodes").is_some_and(Value::is_null));
        let cegar = report.get("cegar").expect("cegar block present");
        assert!(cegar
            .get("iterations")
            .and_then(Value::as_u64)
            .is_some_and(|n| n > 0));
        assert!(cegar.get("cuts").and_then(Value::as_u64).is_some());
        assert!(cegar
            .get("branch_nodes")
            .and_then(Value::as_u64)
            .is_some_and(|n| n > 0));
        assert!(cegar
            .get("targets")
            .and_then(Value::as_u64)
            .is_some_and(|n| n > 0));
    }

    #[test]
    fn unfolding_responses_carry_the_revision_7_counter_block() {
        let stg = vme_read();
        let run = csc_core::CheckRequest::new(&stg, Property::Csc)
            .engine(Engine::UnfoldingIlp)
            .unfold_threads(2)
            .run()
            .unwrap();
        let line = encode_check_response("j12", &stg, &run);
        let v = json::parse(&line).unwrap();
        let report = v.get("report").expect("report present");
        let unfold = report.get("unfold").expect("unfold block present");
        assert!(unfold
            .get("pe_discovered")
            .and_then(Value::as_u64)
            .is_some_and(|n| n > 0));
        assert!(unfold
            .get("pe_commits")
            .and_then(Value::as_u64)
            .is_some_and(|n| n > 0));
        assert_eq!(unfold.get("workers").and_then(Value::as_u64), Some(2));
        assert!(unfold.get("par_ms").and_then(Value::as_f64).is_some());
        assert!(unfold.get("serial_ms").and_then(Value::as_f64).is_some());
        // Engines that never unfold answer with a null block, so
        // clients need no protocol-version branch.
        let run = csc_core::CheckRequest::new(&stg, Property::Usc)
            .engine(Engine::Cegar)
            .run()
            .unwrap();
        let line = encode_check_response("j13", &stg, &run);
        let v = json::parse(&line).unwrap();
        assert!(v
            .get("report")
            .and_then(|r| r.get("unfold"))
            .is_some_and(Value::is_null));
    }

    #[test]
    fn responses_carry_the_revision_8_structure_block() {
        let stg = vme_read();
        let run = csc_core::CheckRequest::new(&stg, Property::Csc)
            .engine(Engine::UnfoldingIlp)
            .structure(true)
            .run()
            .unwrap();
        let line = encode_check_response("j14", &stg, &run);
        let v = json::parse(&line).unwrap();
        let report = v.get("report").expect("report present");
        let structure = report.get("structure").expect("structure block present");
        assert!(!structure.is_null());
        assert!(structure.get("class").and_then(Value::as_str).is_some());
        for flag in [
            "marked_graph",
            "state_machine",
            "free_choice",
            "extended_free_choice",
            "reduced_asymmetric_choice",
            "exact",
            "proved",
        ] {
            assert!(
                structure.get(flag).and_then(Value::as_bool).is_some(),
                "missing flag {flag}"
            );
        }
        assert!(structure
            .get("concurrent_place_pairs")
            .and_then(Value::as_u64)
            .is_some());
        assert!(structure
            .get("locked_signal_pairs")
            .and_then(Value::as_u64)
            .is_some());
        // Jobs that skip the pass answer with a null block, so
        // clients need no protocol-version branch.
        let run = csc_core::CheckRequest::new(&stg, Property::Csc)
            .engine(Engine::UnfoldingIlp)
            .run()
            .unwrap();
        let line = encode_check_response("j15", &stg, &run);
        let v = json::parse(&line).unwrap();
        assert!(v
            .get("report")
            .and_then(|r| r.get("structure"))
            .is_some_and(Value::is_null));
    }

    #[test]
    fn cegar_reports_normalcy_as_unsupported() {
        let stg = vme_read();
        let run = csc_core::CheckRequest::new(&stg, Property::Normalcy)
            .engine(Engine::Cegar)
            .run()
            .unwrap();
        let line = encode_check_response("j11", &stg, &run);
        let v = json::parse(&line).unwrap();
        assert_eq!(v.get("verdict").and_then(Value::as_str), Some("unknown"));
        assert_eq!(v.get("reason").and_then(Value::as_str), Some("unsupported"));
    }

    #[test]
    fn unknown_verdicts_carry_a_reason_code() {
        let stg = vme_read();
        let budget = Budget::unlimited().with_max_events(1);
        let run = csc_core::CheckRequest::new(&stg, Property::Csc)
            .engine(Engine::UnfoldingIlp)
            .budget(budget)
            .run()
            .unwrap();
        let line = encode_check_response("j2", &stg, &run);
        let v = json::parse(&line).unwrap();
        assert_eq!(v.get("verdict").and_then(Value::as_str), Some("unknown"));
        assert_eq!(v.get("reason").and_then(Value::as_str), Some("event-limit"));
        assert!(v.get("witness").is_some_and(Value::is_null));
    }

    #[test]
    fn lint_rejections_carry_coded_diagnostics() {
        let outcome = lint::lint_bytes(
            b".model m\n.outputs a\n.graph\nb+ a+\n",
            &lint::LintOptions::default(),
        );
        let line = encode_lint_rejected(Some("j4"), &outcome.report);
        let v = json::parse(&line).unwrap();
        assert_eq!(v.get("status").and_then(Value::as_str), Some("error"));
        assert_eq!(v.get("code").and_then(Value::as_str), Some("lint_rejected"));
        let diags = v.get("diagnostics").expect("diagnostics present");
        let Value::Arr(items) = diags else {
            panic!("not an array: {diags:?}")
        };
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].get("code").and_then(Value::as_str), Some("L003"));
        assert_eq!(items[0].get("line").and_then(Value::as_u64), Some(4));
        assert!(items[0]
            .get("message")
            .and_then(Value::as_str)
            .is_some_and(|m| m.contains('b')));
    }

    #[test]
    fn overload_responses_carry_code_and_retry_hint() {
        let line = encode_overload_response(Some("j8"), "queue_full", "queue is full", 120);
        let v = json::parse(&line).unwrap();
        assert_eq!(v.get("id").and_then(Value::as_str), Some("j8"));
        assert_eq!(v.get("proto").and_then(Value::as_u64), Some(PROTO_VERSION));
        assert_eq!(v.get("status").and_then(Value::as_str), Some("error"));
        assert_eq!(v.get("code").and_then(Value::as_str), Some("queue_full"));
        assert_eq!(v.get("retry_after_ms").and_then(Value::as_u64), Some(120));
    }

    #[test]
    fn error_responses_echo_the_id() {
        let line = encode_error_response(Some("j3"), "boom: \"quoted\"");
        let v = json::parse(&line).unwrap();
        assert_eq!(v.get("id").and_then(Value::as_str), Some("j3"));
        assert_eq!(v.get("status").and_then(Value::as_str), Some("error"));
        assert_eq!(
            v.get("error").and_then(Value::as_str),
            Some("boom: \"quoted\"")
        );
    }
}
