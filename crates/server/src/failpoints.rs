//! A `failpoints`-style fault-injection facility for the chaos test
//! suite.
//!
//! Production builds compile the whole module down to nothing: with
//! the `failpoints` cargo feature disabled every entry point is an
//! empty `#[inline(always)]` function, so the injection sites in the
//! server hot paths cost zero instructions. With the feature enabled
//! (`cargo test -p server --features failpoints`) tests configure
//! named sites at runtime:
//!
//! ```text
//! failpoints::configure("worker/run", Action::panic().times(3));
//! failpoints::configure("writer/send", Action::sleep_ms(50));
//! failpoints::configure("writer/short_write", Action::trigger());
//! ```
//!
//! Sites registered by the server:
//!
//! | site                 | effect when armed                           |
//! |----------------------|---------------------------------------------|
//! | `worker/run`         | fires on a worker thread as it starts a job: `panic` kills the worker (exercising the supervisor), `sleep` injects queue latency |
//! | `writer/send`        | fires on a connection's writer thread before each response line: `sleep` stalls the socket |
//! | `writer/short_write` | when armed (`trigger`), each response line is written in two short writes with a flush and a delay between them |
//!
//! Every evaluation — firing or not — increments the site's hit
//! counter ([`hits`]), so tests can assert an injection point was
//! actually reached. [`reset`] disarms everything between tests;
//! because the registry is process-global, chaos tests that arm
//! failpoints serialise themselves around a mutex (see
//! `tests/chaos.rs`).

#[cfg(feature = "failpoints")]
pub use enabled::{configure, fire, hits, is_triggered, remove, reset, Action};

#[cfg(not(feature = "failpoints"))]
pub use disabled::{configure, fire, hits, is_triggered, remove, reset, Action};

/// The real registry, compiled only under `--features failpoints`.
#[cfg(feature = "failpoints")]
mod enabled {
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};
    use std::time::Duration;

    /// What an armed failpoint does when it fires.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum Effect {
        /// Panic the evaluating thread.
        Panic,
        /// Sleep the evaluating thread.
        Sleep(Duration),
        /// No side effect in [`fire`]; the site's behaviour switch is
        /// queried with [`is_triggered`] instead (e.g. short writes).
        Trigger,
    }

    /// A configured injection: an effect plus firing discipline.
    #[derive(Debug, Clone, Copy)]
    pub struct Action {
        effect: Effect,
        /// Fire on every `period`-th evaluation (1 = every time).
        period: u64,
        /// Stop firing after this many firings (`None` = forever).
        times: Option<u64>,
    }

    impl Action {
        /// Panic the thread that evaluates the site.
        pub fn panic() -> Self {
            Action {
                effect: Effect::Panic,
                period: 1,
                times: None,
            }
        }

        /// Sleep `ms` milliseconds at the site.
        pub fn sleep_ms(ms: u64) -> Self {
            Action {
                effect: Effect::Sleep(Duration::from_millis(ms)),
                period: 1,
                times: None,
            }
        }

        /// Arm the site as a pure behaviour switch for
        /// [`is_triggered`].
        pub fn trigger() -> Self {
            Action {
                effect: Effect::Trigger,
                period: 1,
                times: None,
            }
        }

        /// Fire only every `period`-th evaluation (1 = every time).
        #[must_use]
        pub fn every(mut self, period: u64) -> Self {
            self.period = period.max(1);
            self
        }

        /// Disarm after `times` firings.
        #[must_use]
        pub fn times(mut self, times: u64) -> Self {
            self.times = Some(times);
            self
        }
    }

    #[derive(Debug)]
    struct Site {
        action: Option<Action>,
        evals: u64,
        fired: u64,
    }

    fn registry() -> &'static Mutex<HashMap<String, Site>> {
        static REGISTRY: OnceLock<Mutex<HashMap<String, Site>>> = OnceLock::new();
        REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
    }

    fn with_registry<T>(f: impl FnOnce(&mut HashMap<String, Site>) -> T) -> T {
        // A panicking failpoint poisons this mutex by design; the
        // registry state is always consistent (updates complete
        // before the panic), so recover the guard.
        let mut guard = registry()
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        f(&mut guard)
    }

    /// Arms `name` with `action`, replacing any previous arming and
    /// resetting its counters.
    pub fn configure(name: &str, action: Action) {
        with_registry(|sites| {
            sites.insert(
                name.to_owned(),
                Site {
                    action: Some(action),
                    evals: 0,
                    fired: 0,
                },
            );
        });
    }

    /// Disarms `name` (its hit counter survives until [`reset`]).
    pub fn remove(name: &str) {
        with_registry(|sites| {
            if let Some(site) = sites.get_mut(name) {
                site.action = None;
            }
        });
    }

    /// Disarms every site and clears all counters.
    pub fn reset() {
        with_registry(HashMap::clear);
    }

    /// Times the site was evaluated (fired or not) since [`reset`].
    pub fn hits(name: &str) -> u64 {
        with_registry(|sites| sites.get(name).map_or(0, |s| s.evals))
    }

    /// Decides whether the site fires this evaluation and updates its
    /// counters; returns the effect to apply.
    fn evaluate(name: &str) -> Option<Effect> {
        with_registry(|sites| {
            let site = sites.entry(name.to_owned()).or_insert(Site {
                action: None,
                evals: 0,
                fired: 0,
            });
            site.evals += 1;
            let action = site.action?;
            if site.evals % action.period != 0 {
                return None;
            }
            if let Some(times) = action.times {
                if site.fired >= times {
                    return None;
                }
            }
            site.fired += 1;
            Some(action.effect)
        })
    }

    /// Evaluates the site, applying `panic`/`sleep` effects in place.
    ///
    /// # Panics
    ///
    /// Deliberately, when the site is armed with [`Action::panic`] —
    /// that is the injected fault.
    pub fn fire(name: &str) {
        match evaluate(name) {
            Some(Effect::Panic) => panic!("failpoint `{name}` fired: injected panic"),
            Some(Effect::Sleep(d)) => std::thread::sleep(d),
            Some(Effect::Trigger) | None => {}
        }
    }

    /// Evaluates the site as a behaviour switch: `true` when it fired
    /// this evaluation (used for e.g. short-write injection).
    pub fn is_triggered(name: &str) -> bool {
        evaluate(name).is_some()
    }
}

/// Zero-cost stubs compiled when the `failpoints` feature is off.
#[cfg(not(feature = "failpoints"))]
mod disabled {
    /// Stub of the enabled-mode action builder; constructible so code
    /// can be written feature-independently, but never applied.
    #[derive(Debug, Clone, Copy)]
    pub struct Action;

    impl Action {
        /// No-op stand-in for the enabled-mode constructor.
        pub fn panic() -> Self {
            Action
        }

        /// No-op stand-in for the enabled-mode constructor.
        pub fn sleep_ms(_ms: u64) -> Self {
            Action
        }

        /// No-op stand-in for the enabled-mode constructor.
        pub fn trigger() -> Self {
            Action
        }

        /// No-op stand-in for the enabled-mode modifier.
        #[must_use]
        pub fn every(self, _period: u64) -> Self {
            self
        }

        /// No-op stand-in for the enabled-mode modifier.
        #[must_use]
        pub fn times(self, _times: u64) -> Self {
            self
        }
    }

    /// No-op: fault injection is compiled out.
    #[inline(always)]
    pub fn configure(_name: &str, _action: Action) {}

    /// No-op: fault injection is compiled out.
    #[inline(always)]
    pub fn remove(_name: &str) {}

    /// No-op: fault injection is compiled out.
    #[inline(always)]
    pub fn reset() {}

    /// Always zero: fault injection is compiled out.
    #[inline(always)]
    pub fn hits(_name: &str) -> u64 {
        0
    }

    /// Injection site that can never fire in production builds.
    #[inline(always)]
    pub fn fire(_name: &str) {}

    /// Behaviour switch that is always off in production builds.
    #[inline(always)]
    pub fn is_triggered(_name: &str) -> bool {
        false
    }
}

#[cfg(all(test, feature = "failpoints"))]
mod tests {
    use super::*;
    use std::sync::{Mutex, OnceLock};

    /// The registry is process-global; serialise tests that arm it.
    fn guard() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn unarmed_sites_count_evaluations_but_never_fire() {
        let _guard = guard();
        reset();
        fire("t/unarmed");
        assert!(!is_triggered("t/unarmed"));
        assert_eq!(hits("t/unarmed"), 2);
        reset();
        assert_eq!(hits("t/unarmed"), 0);
    }

    #[test]
    fn times_bounds_the_firing_count() {
        let _guard = guard();
        reset();
        configure("t/bounded", Action::trigger().times(2));
        let fired: Vec<bool> = (0..4).map(|_| is_triggered("t/bounded")).collect();
        assert_eq!(fired, [true, true, false, false]);
        reset();
    }

    #[test]
    fn every_fires_periodically() {
        let _guard = guard();
        reset();
        configure("t/periodic", Action::trigger().every(3));
        let fired: Vec<bool> = (0..6).map(|_| is_triggered("t/periodic")).collect();
        assert_eq!(fired, [false, false, true, false, false, true]);
        reset();
    }

    #[test]
    fn panic_action_panics_the_evaluating_thread() {
        let _guard = guard();
        reset();
        configure("t/panic", Action::panic().times(1));
        let result = std::panic::catch_unwind(|| fire("t/panic"));
        assert!(result.is_err());
        fire("t/panic"); // Exhausted: must not panic again.
        reset();
    }

    #[test]
    fn remove_disarms_but_keeps_counters() {
        let _guard = guard();
        reset();
        configure("t/removed", Action::trigger());
        assert!(is_triggered("t/removed"));
        remove("t/removed");
        assert!(!is_triggered("t/removed"));
        assert_eq!(hits("t/removed"), 2);
        reset();
    }
}
