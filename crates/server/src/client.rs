//! A blocking NDJSON client for `stgd`, used by `stgcheck --server`,
//! the bench harness's `server-bench` mode and the integration tests.
//!
//! The client is deliberately thin: it frames request lines, parses
//! response lines, and surfaces the protocol's `id` correlation so a
//! caller pipelining a batch can match completion-order responses
//! back to its jobs. Two robustness layers sit on top:
//!
//! - **Read timeouts.** The socket has a default read timeout
//!   ([`Client::DEFAULT_READ_TIMEOUT_MS`]), so a dead or wedged
//!   server yields [`ClientError::Timeout`] instead of blocking the
//!   caller forever.
//! - **Retry with backoff.** [`Client::check_with_retry`] resubmits a
//!   job across transport failures (reconnecting first) and across
//!   the server's revision-4 load-shedding responses (`queue_full`,
//!   `over_quota`) and `worker_crashed` errors, waiting out the
//!   server's `retry_after_ms` hint when one is present and
//!   exponential backoff with jitter otherwise. Resubmission is safe
//!   because `check` jobs are idempotent: the verdict is a pure
//!   function of the net and property, and server-side artifacts are
//!   content-addressed by canonical STG hash.

use std::fmt;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, SystemTime, UNIX_EPOCH};

use csc_core::{Engine, Property};
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::json::{self, Value};
use crate::protocol::{
    encode_check_request, encode_synthesize_request, BudgetSpec, CheckRequest, SynthesizeRequest,
};

/// A failure talking to the server.
#[derive(Debug)]
pub enum ClientError {
    /// The TCP transport failed (connect, read or write).
    Io(io::Error),
    /// The socket read timeout expired while a response was still
    /// expected: the server is dead, wedged, or slower than the
    /// configured timeout. The connection may have lost a partial
    /// line and should be re-established before reuse.
    Timeout,
    /// The server's line was not a valid response object, or the
    /// connection closed while a response was still expected.
    Protocol(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Timeout => write!(f, "timed out awaiting a response"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        if matches!(
            e.kind(),
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
        ) {
            ClientError::Timeout
        } else {
            ClientError::Io(e)
        }
    }
}

/// One decoded response to a `check` request.
#[derive(Debug, Clone)]
pub struct CheckResponse {
    /// The correlation id echoed by the server (absent only for
    /// errors on requests whose id never parsed).
    pub id: Option<String>,
    /// Protocol revision of the response. Revision-1 servers did not
    /// stamp the field, so an absent `proto` decodes as `1`; revision
    /// 2 added the optional `report.bdd` stats object (see
    /// [`Self::bdd_stats`]); revision 4 added `retry_after_ms` on
    /// load-shedding errors.
    pub proto: u64,
    /// `"ok"` or `"error"`.
    pub status: String,
    /// `"holds"`, `"violated"` or `"unknown"` when `status == "ok"`.
    pub verdict: Option<String>,
    /// Machine-readable exhaustion code when the verdict is unknown.
    pub reason: Option<String>,
    /// The engine that ran the job.
    pub engine: Option<String>,
    /// For composite engines, the member whose verdict was adopted.
    pub winner: Option<String>,
    /// The error message when `status == "error"`.
    pub error: Option<String>,
    /// Stable machine-readable error code when `status == "error"`
    /// and the server classified the failure (e.g. `queue_full`).
    pub code: Option<String>,
    /// The revision-4 backoff hint on load-shedding errors: how long
    /// the server expects to need before it can admit the job.
    pub retry_after_ms: Option<u64>,
    /// Worker-side wall-clock of the check itself.
    pub elapsed_ms: Option<f64>,
    /// The complete response object (witness, resource report, …).
    pub raw: Value,
}

impl CheckResponse {
    fn from_value(raw: Value) -> Result<Self, ClientError> {
        let status = raw
            .get("status")
            .and_then(Value::as_str)
            .ok_or_else(|| ClientError::Protocol("response without `status`".to_owned()))?
            .to_owned();
        let text = |key: &str| raw.get(key).and_then(Value::as_str).map(str::to_owned);
        Ok(CheckResponse {
            id: text("id"),
            proto: raw.get("proto").and_then(Value::as_u64).unwrap_or(1),
            status,
            verdict: text("verdict"),
            reason: text("reason"),
            engine: text("engine"),
            winner: text("winner"),
            error: text("error"),
            code: text("code"),
            retry_after_ms: raw.get("retry_after_ms").and_then(Value::as_u64),
            elapsed_ms: raw
                .get("report")
                .and_then(|r| r.get("elapsed_ms"))
                .and_then(Value::as_f64),
            raw,
        })
    }

    /// Whether the server decided the property (`holds`/`violated`).
    pub fn is_conclusive(&self) -> bool {
        matches!(self.verdict.as_deref(), Some("holds" | "violated"))
    }

    /// Whether this is a transient error a client may safely retry:
    /// the revision-4 load-shedding codes (`queue_full`,
    /// `over_quota`) and `worker_crashed`. Permanent rejections
    /// (`lint_rejected`, protocol errors) are not retryable — the
    /// same input will fail the same way.
    pub fn is_retryable(&self) -> bool {
        self.status == "error"
            && matches!(
                self.code.as_deref(),
                Some("queue_full" | "over_quota" | "worker_crashed")
            )
    }

    /// The revision-2 `report.bdd` stats object, when the job's
    /// engine touched the symbolic stage. `None` on revision-1
    /// responses and for engines that never built a BDD, so callers
    /// need no protocol-version branch of their own.
    pub fn bdd_stats(&self) -> Option<&Value> {
        self.raw
            .get("report")
            .and_then(|r| r.get("bdd"))
            .filter(|v| !v.is_null())
    }

    /// The revision-3 `report.lint` summary object, when the server
    /// ran the pre-engine lint stage for the job. `None` on older
    /// revisions and on servers with prelint disabled, so callers
    /// need no protocol-version branch of their own.
    pub fn lint_summary(&self) -> Option<&Value> {
        self.raw
            .get("report")
            .and_then(|r| r.get("lint"))
            .filter(|v| !v.is_null())
    }

    /// The revision-7 `report.unfold` counter block
    /// (`pe_discovered`, `pe_commits`, `workers`, `par_ms`,
    /// `serial_ms`), when the job's engine built an unfolding prefix.
    /// `None` on older revisions and for engines that never unfold,
    /// so callers need no protocol-version branch of their own.
    pub fn unfold_stats(&self) -> Option<&Value> {
        self.raw
            .get("report")
            .and_then(|r| r.get("unfold"))
            .filter(|v| !v.is_null())
    }

    /// The revision-8 `report.structure` summary object (the detected
    /// net `class`, the individual class flags, `exact`,
    /// `concurrent_place_pairs`, `locked_signal_pairs`, `proved`),
    /// when the server ran the structural pass for the job. `None` on
    /// older revisions and for jobs that skipped the pass, so callers
    /// need no protocol-version branch of their own.
    pub fn structure_summary(&self) -> Option<&Value> {
        self.raw
            .get("report")
            .and_then(|r| r.get("structure"))
            .filter(|v| !v.is_null())
    }

    /// The revision-3 `diagnostics` array of a `lint_rejected`
    /// admission error: one object per finding with `code`,
    /// `severity`, `line`/`col` span and `message`.
    pub fn diagnostics(&self) -> Option<&Value> {
        self.raw.get("diagnostics").filter(|v| !v.is_null())
    }
}

/// One decoded response to a revision-6 `synthesize` request.
#[derive(Debug, Clone)]
pub struct SynthesizeResponse {
    /// The correlation id echoed by the server.
    pub id: Option<String>,
    /// Protocol revision of the response.
    pub proto: u64,
    /// `"ok"` or `"error"`.
    pub status: String,
    /// `"clean"` (already conflict-free) or `"resolved"` (state
    /// signals were inserted) when `status == "ok"`.
    pub outcome: Option<String>,
    /// Names of the inserted state signals (empty for `clean`).
    pub inserted: Vec<String>,
    /// The resolved net in `.g` format; `None` for `clean` outcomes
    /// and failures.
    pub resolved_g: Option<String>,
    /// The error message when `status == "error"`.
    pub error: Option<String>,
    /// Stable machine-readable error code when `status == "error"`
    /// (`resolve_failed`, `queue_full`, …).
    pub code: Option<String>,
    /// The backoff hint on load-shedding errors.
    pub retry_after_ms: Option<u64>,
    /// Worker-side wall-clock of the whole pipeline.
    pub elapsed_ms: Option<f64>,
    /// The complete response object (equations, stages, resolve
    /// counters, …).
    pub raw: Value,
}

impl SynthesizeResponse {
    fn from_value(raw: Value) -> Result<Self, ClientError> {
        let status = raw
            .get("status")
            .and_then(Value::as_str)
            .ok_or_else(|| ClientError::Protocol("response without `status`".to_owned()))?
            .to_owned();
        let text = |key: &str| raw.get(key).and_then(Value::as_str).map(str::to_owned);
        let inserted = match raw.get("inserted") {
            Some(Value::Arr(items)) => items
                .iter()
                .filter_map(Value::as_str)
                .map(str::to_owned)
                .collect(),
            _ => Vec::new(),
        };
        Ok(SynthesizeResponse {
            id: text("id"),
            proto: raw.get("proto").and_then(Value::as_u64).unwrap_or(1),
            status,
            outcome: text("outcome"),
            inserted,
            resolved_g: text("resolved_g"),
            error: text("error"),
            code: text("code"),
            retry_after_ms: raw.get("retry_after_ms").and_then(Value::as_u64),
            elapsed_ms: raw.get("elapsed_ms").and_then(Value::as_f64),
            raw,
        })
    }

    /// Whether the pipeline ended conflict-free (`clean`/`resolved`).
    pub fn is_conflict_free(&self) -> bool {
        self.status == "ok"
    }

    /// Whether this is a transient error a client may safely retry.
    /// The same codes as `check` qualify (`queue_full`, `over_quota`,
    /// `worker_crashed`); `resolve_failed` does *not* — the resolver
    /// is deterministic, so resubmitting the same net fails the same
    /// way.
    pub fn is_retryable(&self) -> bool {
        self.status == "error"
            && matches!(
                self.code.as_deref(),
                Some("queue_full" | "over_quota" | "worker_crashed")
            )
    }

    /// The `equations` array: one object per non-input signal with
    /// `signal`, `equation` and `monotonic` members.
    pub fn equations(&self) -> Option<&Value> {
        self.raw.get("equations").filter(|v| !v.is_null())
    }

    /// The per-stage report blocks (`stage`, `elapsed_ms`, `detail`).
    pub fn stages(&self) -> Option<&Value> {
        self.raw.get("stages").filter(|v| !v.is_null())
    }

    /// The resolver's counters (`candidates_tried`, `warm_reuses`,
    /// `verify_prefix_events_built`, …); `None` when the input was
    /// already conflict-free.
    pub fn resolve_stats(&self) -> Option<&Value> {
        self.raw.get("resolve").filter(|v| !v.is_null())
    }
}

/// How [`Client::check_with_retry`] paces its attempts.
///
/// Delays follow truncated exponential backoff with jitter: attempt
/// `n` (counting retries from 0) waits around `base_delay_ms * 2^n`,
/// capped at `max_delay_ms`, with up to ±25% random jitter so a fleet
/// of shed clients does not retry in lockstep. When the server's
/// response carried a `retry_after_ms` hint, the hint (plus jitter)
/// replaces the exponential term for that attempt.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts, including the first (minimum 1).
    pub max_attempts: u32,
    /// Base delay of the exponential schedule.
    pub base_delay_ms: u64,
    /// Upper bound on any single delay.
    pub max_delay_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 6,
            base_delay_ms: 25,
            max_delay_ms: 2_000,
        }
    }
}

impl RetryPolicy {
    /// The delay before retry number `retry` (0-based), honouring the
    /// server's hint when present.
    fn delay_ms(&self, retry: u32, hint: Option<u64>, rng: &mut StdRng) -> u64 {
        let nominal = match hint {
            Some(ms) => ms.max(1),
            None => self
                .base_delay_ms
                .max(1)
                .saturating_mul(1u64 << retry.min(16)),
        }
        .min(self.max_delay_ms.max(1));
        // ±25% jitter, never below 1ms.
        let spread = (nominal / 2).max(1);
        (nominal.saturating_sub(nominal / 4) + rng.random_range(0..spread)).max(1)
    }
}

/// Counters describing how one retried operation actually went, for
/// harnesses (the bench's `server-bench` mode) that report resilience
/// behaviour alongside throughput.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Attempts performed (1 = first try succeeded).
    pub attempts: u32,
    /// Load-shedding responses received (`queue_full`/`over_quota`).
    pub sheds: u32,
    /// `worker_crashed` responses received.
    pub worker_crashes: u32,
    /// Times the connection was re-established after a transport
    /// failure or timeout.
    pub reconnects: u32,
}

/// How [`Client::retry_loop`] should treat one response.
struct RetryClass {
    retryable: bool,
    worker_crash: bool,
    retry_after_ms: Option<u64>,
}

/// A blocking connection to one `stgd` server.
pub struct Client {
    writer: BufWriter<TcpStream>,
    reader: BufReader<TcpStream>,
    /// The server's resolved address, kept for reconnects.
    addr: SocketAddr,
    read_timeout: Option<Duration>,
}

impl Client {
    /// Default socket read timeout: long enough for real
    /// verification workloads, short enough that a dead server is an
    /// error rather than a hang.
    pub const DEFAULT_READ_TIMEOUT_MS: u64 = 30_000;

    /// Connects to a running server with the default read timeout.
    ///
    /// # Errors
    ///
    /// Propagates connect/clone failures as [`ClientError::Io`].
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        Self::connect_with_timeout(
            addr,
            Some(Duration::from_millis(Self::DEFAULT_READ_TIMEOUT_MS)),
        )
    }

    /// Connects with an explicit read timeout (`None` = block
    /// forever, the pre-revision-4 behaviour).
    ///
    /// # Errors
    ///
    /// Propagates connect/clone failures as [`ClientError::Io`].
    pub fn connect_with_timeout(
        addr: impl ToSocketAddrs,
        read_timeout: Option<Duration>,
    ) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        let addr = stream.peer_addr()?;
        stream.set_read_timeout(read_timeout)?;
        let read_half = stream.try_clone()?;
        Ok(Client {
            writer: BufWriter::new(stream),
            reader: BufReader::new(read_half),
            addr,
            read_timeout,
        })
    }

    /// Replaces the socket read timeout (`None` = block forever).
    ///
    /// # Errors
    ///
    /// Propagates the socket-option failure as [`ClientError::Io`].
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.reader.get_ref().set_read_timeout(timeout)?;
        self.read_timeout = timeout;
        Ok(())
    }

    /// Drops the current connection and establishes a fresh one to
    /// the same server. Any pipelined responses still in flight on
    /// the old connection are lost — callers resubmit (safe: `check`
    /// jobs are idempotent).
    ///
    /// # Errors
    ///
    /// Propagates connect failures as [`ClientError::Io`].
    pub fn reconnect(&mut self) -> Result<(), ClientError> {
        let fresh = Self::connect_with_timeout(self.addr, self.read_timeout)?;
        *self = fresh;
        Ok(())
    }

    /// Sends one raw request line and reads one response line —
    /// only valid while no pipelined responses are pending.
    ///
    /// # Errors
    ///
    /// Transport failures and unparsable response lines.
    pub fn round_trip(&mut self, line: &str) -> Result<Value, ClientError> {
        self.send_line(line)?;
        self.read_value()
    }

    /// Queues a `check` without waiting; pair with
    /// [`Self::read_response`], matching responses by id.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn submit(&mut self, request: &CheckRequest) -> Result<(), ClientError> {
        self.send_line(&encode_check_request(request))
    }

    /// Reads the next response line as a [`CheckResponse`]. With
    /// pipelined submissions these arrive in *completion* order.
    ///
    /// # Errors
    ///
    /// Transport failures, timeout, EOF, or an unparsable response.
    pub fn read_response(&mut self) -> Result<CheckResponse, ClientError> {
        CheckResponse::from_value(self.read_value()?)
    }

    /// Convenience single-job check: submit and wait for its verdict.
    ///
    /// # Errors
    ///
    /// Transport failures or an unparsable response.
    pub fn check(
        &mut self,
        id: &str,
        stg_g: &str,
        property: Property,
        engine: Option<Engine>,
        budget: BudgetSpec,
    ) -> Result<CheckResponse, ClientError> {
        self.submit(&CheckRequest {
            id: id.to_owned(),
            stg_g: stg_g.to_owned(),
            property,
            engine,
            budget,
        })?;
        self.read_response()
    }

    /// A single-job check that rides out transient failures: on a
    /// transport error or timeout the connection is re-established
    /// and the job resubmitted; on a retryable server error
    /// (`queue_full`, `over_quota`, `worker_crashed`) the client
    /// waits — the server's `retry_after_ms` hint when present,
    /// exponential backoff with jitter otherwise — and resubmits.
    /// Safe because `check` jobs are idempotent.
    ///
    /// Returns the first non-retryable response, or — when every
    /// attempt was shed — the last shed response (`status: "error"`
    /// with its code), so callers always see the server's verdict on
    /// the final attempt.
    ///
    /// # Errors
    ///
    /// The last transport error once attempts are exhausted without
    /// any server response.
    pub fn check_with_retry(
        &mut self,
        id: &str,
        stg_g: &str,
        property: Property,
        engine: Option<Engine>,
        budget: BudgetSpec,
        policy: &RetryPolicy,
    ) -> Result<CheckResponse, ClientError> {
        self.check_with_retry_stats(id, stg_g, property, engine, budget, policy)
            .map(|(response, _)| response)
    }

    /// [`Self::check_with_retry`] with the resilience counters of the
    /// run ([`RetryStats`]) alongside the response.
    ///
    /// # Errors
    ///
    /// The last transport error once attempts are exhausted without
    /// any server response.
    pub fn check_with_retry_stats(
        &mut self,
        id: &str,
        stg_g: &str,
        property: Property,
        engine: Option<Engine>,
        budget: BudgetSpec,
        policy: &RetryPolicy,
    ) -> Result<(CheckResponse, RetryStats), ClientError> {
        self.retry_loop(
            policy,
            |client| client.check(id, stg_g, property, engine, budget),
            |r| RetryClass {
                retryable: r.is_retryable(),
                worker_crash: r.code.as_deref() == Some("worker_crashed"),
                retry_after_ms: r.retry_after_ms,
            },
        )
    }

    /// Queues a `synthesize` without waiting; pair with
    /// [`Self::read_synthesize_response`], matching responses by id.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn submit_synthesize(&mut self, request: &SynthesizeRequest) -> Result<(), ClientError> {
        self.send_line(&encode_synthesize_request(request))
    }

    /// Reads the next response line as a [`SynthesizeResponse`].
    ///
    /// # Errors
    ///
    /// Transport failures, timeout, EOF, or an unparsable response.
    pub fn read_synthesize_response(&mut self) -> Result<SynthesizeResponse, ClientError> {
        SynthesizeResponse::from_value(self.read_value()?)
    }

    /// Convenience single-job synthesis: submit and wait for the
    /// resolved net and equations (or the `resolve_failed` error).
    ///
    /// # Errors
    ///
    /// Transport failures or an unparsable response.
    pub fn synthesize(
        &mut self,
        id: &str,
        stg_g: &str,
        max_signals: Option<usize>,
        engine: Option<Engine>,
        budget: BudgetSpec,
    ) -> Result<SynthesizeResponse, ClientError> {
        self.submit_synthesize(&SynthesizeRequest {
            id: id.to_owned(),
            stg_g: stg_g.to_owned(),
            max_signals,
            engine,
            budget,
        })?;
        self.read_synthesize_response()
    }

    /// [`Self::synthesize`] riding out transient failures exactly like
    /// [`Self::check_with_retry`]. Resubmission is safe because the
    /// pipeline is deterministic; `resolve_failed` is a *permanent*
    /// outcome and is returned immediately, never retried.
    ///
    /// # Errors
    ///
    /// The last transport error once attempts are exhausted without
    /// any server response.
    pub fn synthesize_with_retry(
        &mut self,
        id: &str,
        stg_g: &str,
        max_signals: Option<usize>,
        engine: Option<Engine>,
        budget: BudgetSpec,
        policy: &RetryPolicy,
    ) -> Result<SynthesizeResponse, ClientError> {
        self.retry_loop(
            policy,
            |client| client.synthesize(id, stg_g, max_signals, engine, budget),
            |r| RetryClass {
                retryable: r.is_retryable(),
                worker_crash: r.code.as_deref() == Some("worker_crashed"),
                retry_after_ms: r.retry_after_ms,
            },
        )
        .map(|(response, _)| response)
    }

    /// The shared retry engine behind [`Self::check_with_retry_stats`]
    /// and [`Self::synthesize_with_retry`]: transport failures
    /// reconnect and resubmit; responses `classify` marks retryable
    /// wait out the server's hint (or exponential backoff with
    /// jitter) and resubmit; the first non-retryable response wins.
    /// When every attempt was shed, the last shed response is
    /// returned so callers always see the server's final word.
    fn retry_loop<T>(
        &mut self,
        policy: &RetryPolicy,
        mut attempt: impl FnMut(&mut Self) -> Result<T, ClientError>,
        classify: impl Fn(&T) -> RetryClass,
    ) -> Result<(T, RetryStats), ClientError> {
        let seed = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map_or(0, |d| d.subsec_nanos() as u64 ^ d.as_secs());
        let mut rng = StdRng::seed_from_u64(seed ^ self.addr.port() as u64);
        let mut stats = RetryStats::default();
        let mut broken = false;
        let mut last_shed: Option<(T, Option<u64>)> = None;
        let mut last_error: Option<ClientError> = None;
        let attempts = policy.max_attempts.max(1);
        for attempt_no in 0..attempts {
            if attempt_no > 0 {
                let hint = last_shed.as_ref().and_then(|(_, hint)| *hint);
                let delay = policy.delay_ms(attempt_no - 1, hint, &mut rng);
                std::thread::sleep(Duration::from_millis(delay));
            }
            if broken {
                match self.reconnect() {
                    Ok(()) => {
                        stats.reconnects += 1;
                        broken = false;
                    }
                    Err(e) => {
                        last_error = Some(e);
                        continue;
                    }
                }
            }
            stats.attempts += 1;
            match attempt(self) {
                Ok(response) => {
                    let class = classify(&response);
                    if !class.retryable {
                        return Ok((response, stats));
                    }
                    if class.worker_crash {
                        stats.worker_crashes += 1;
                    } else {
                        stats.sheds += 1;
                    }
                    last_shed = Some((response, class.retry_after_ms));
                    last_error = None;
                }
                Err(e) => {
                    // The stream may hold a half-read response; never
                    // reuse it.
                    broken = true;
                    last_error = Some(e);
                    last_shed = None;
                }
            }
        }
        match (last_error, last_shed) {
            (None, Some((shed, _))) => Ok((shed, stats)),
            (Some(e), _) => Err(e),
            (None, None) => Err(ClientError::Protocol(
                "retry loop made no attempts".to_owned(),
            )),
        }
    }

    /// Fetches the service counters.
    ///
    /// # Errors
    ///
    /// Transport failures or an unparsable response.
    pub fn stats(&mut self) -> Result<Value, ClientError> {
        self.round_trip(r#"{"op":"stats"}"#)
    }

    /// Requests graceful shutdown and returns the acknowledgement.
    ///
    /// # Errors
    ///
    /// Transport failures or an unparsable response.
    pub fn shutdown(&mut self) -> Result<Value, ClientError> {
        self.round_trip(r#"{"op":"shutdown"}"#)
    }

    fn send_line(&mut self, line: &str) -> Result<(), ClientError> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        Ok(())
    }

    fn read_value(&mut self) -> Result<Value, ClientError> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(ClientError::Protocol(
                "connection closed while awaiting a response".to_owned(),
            ));
        }
        json::parse(line.trim())
            .map_err(|e| ClientError::Protocol(format!("unparsable response line: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn revision_1_responses_without_proto_still_decode() {
        let raw = json::parse(
            r#"{"id":"a","status":"ok","verdict":"holds",
                "report":{"elapsed_ms":1.0,"bdd_nodes":null}}"#,
        )
        .unwrap();
        let response = CheckResponse::from_value(raw).unwrap();
        assert_eq!(response.proto, 1);
        assert_eq!(response.verdict.as_deref(), Some("holds"));
        assert!(response.bdd_stats().is_none());
        assert!(!response.is_retryable());
    }

    #[test]
    fn revision_2_responses_surface_the_bdd_stats() {
        let raw = json::parse(
            r#"{"id":"b","proto":2,"status":"ok","verdict":"violated",
                "report":{"elapsed_ms":1.0,
                          "bdd":{"live_nodes":10,"peak_live_nodes":20,
                                 "gc_runs":1,"reorder_passes":0,
                                 "order":[0,1]}}}"#,
        )
        .unwrap();
        let response = CheckResponse::from_value(raw).unwrap();
        assert_eq!(response.proto, 2);
        let bdd = response.bdd_stats().expect("bdd stats");
        assert_eq!(bdd.get("peak_live_nodes").and_then(Value::as_u64), Some(20));
    }

    #[test]
    fn revision_2_null_bdd_reads_as_absent() {
        let raw = json::parse(
            r#"{"id":"c","proto":2,"status":"ok","verdict":"holds",
                "report":{"elapsed_ms":1.0,"bdd":null}}"#,
        )
        .unwrap();
        let response = CheckResponse::from_value(raw).unwrap();
        assert_eq!(response.proto, 2);
        assert!(response.bdd_stats().is_none());
    }

    #[test]
    fn revision_4_shed_responses_decode_as_retryable() {
        let raw = json::parse(
            r#"{"id":"d","proto":4,"status":"error","code":"queue_full",
                "error":"job queue is full","retry_after_ms":120}"#,
        )
        .unwrap();
        let response = CheckResponse::from_value(raw).unwrap();
        assert!(response.is_retryable());
        assert_eq!(response.retry_after_ms, Some(120));
        // A lint rejection is permanent, never retryable.
        let raw = json::parse(
            r#"{"id":"e","status":"error","code":"lint_rejected",
                "error":"input rejected","diagnostics":[]}"#,
        )
        .unwrap();
        assert!(!CheckResponse::from_value(raw).unwrap().is_retryable());
        // worker_crashed is retryable even without a hint.
        let raw = json::parse(
            r#"{"id":"f","status":"error","code":"worker_crashed",
                "error":"the worker deciding this job crashed"}"#,
        )
        .unwrap();
        let response = CheckResponse::from_value(raw).unwrap();
        assert!(response.is_retryable());
        assert_eq!(response.retry_after_ms, None);
    }

    #[test]
    fn revision_8_responses_surface_the_structure_summary() {
        let raw = json::parse(
            r#"{"id":"g","proto":8,"status":"ok","verdict":"holds",
                "report":{"elapsed_ms":1.0,
                          "structure":{"class":"marked-graph",
                                       "marked_graph":true,
                                       "state_machine":false,
                                       "free_choice":true,
                                       "extended_free_choice":true,
                                       "reduced_asymmetric_choice":true,
                                       "exact":true,
                                       "concurrent_place_pairs":3,
                                       "locked_signal_pairs":2,
                                       "signal_pairs":6,
                                       "proved":false}}}"#,
        )
        .unwrap();
        let response = CheckResponse::from_value(raw).unwrap();
        assert_eq!(response.proto, 8);
        let structure = response.structure_summary().expect("structure summary");
        assert_eq!(
            structure.get("class").and_then(Value::as_str),
            Some("marked-graph")
        );
        assert_eq!(structure.get("exact").and_then(Value::as_bool), Some(true));
        assert_eq!(
            structure
                .get("concurrent_place_pairs")
                .and_then(Value::as_u64),
            Some(3)
        );
    }

    #[test]
    fn older_revisions_read_structure_as_absent() {
        // Revision 7 had no block at all; a revision-8 null block is
        // equally absent — accessors are revision-tolerant both ways.
        let raw = json::parse(
            r#"{"id":"h","proto":7,"status":"ok","verdict":"holds",
                "report":{"elapsed_ms":1.0}}"#,
        )
        .unwrap();
        assert!(CheckResponse::from_value(raw)
            .unwrap()
            .structure_summary()
            .is_none());
        let raw = json::parse(
            r#"{"id":"i","proto":8,"status":"ok","verdict":"holds",
                "report":{"elapsed_ms":1.0,"structure":null}}"#,
        )
        .unwrap();
        assert!(CheckResponse::from_value(raw)
            .unwrap()
            .structure_summary()
            .is_none());
    }

    #[test]
    fn retry_delays_honour_hints_and_stay_bounded() {
        let policy = RetryPolicy::default();
        let mut rng = StdRng::seed_from_u64(7);
        for retry in 0..10 {
            let free = policy.delay_ms(retry, None, &mut rng);
            assert!(free >= 1);
            assert!(
                free <= policy.max_delay_ms + policy.max_delay_ms / 2,
                "{free}"
            );
            let hinted = policy.delay_ms(retry, Some(100), &mut rng);
            // Hint of 100ms with ±25% jitter band.
            assert!((75..=150).contains(&hinted), "{hinted}");
        }
        // The exponential term grows between early retries.
        let mut rng = StdRng::seed_from_u64(7);
        let d0 = policy.delay_ms(0, None, &mut rng);
        let d4 = policy.delay_ms(4, None, &mut rng);
        assert!(d4 > d0, "{d0} -> {d4}");
    }

    #[test]
    fn timeouts_map_to_the_typed_variant() {
        let timeout = io::Error::new(io::ErrorKind::TimedOut, "slow");
        assert!(matches!(ClientError::from(timeout), ClientError::Timeout));
        let wouldblock = io::Error::new(io::ErrorKind::WouldBlock, "slow");
        assert!(matches!(
            ClientError::from(wouldblock),
            ClientError::Timeout
        ));
        let refused = io::Error::new(io::ErrorKind::ConnectionRefused, "no");
        assert!(matches!(ClientError::from(refused), ClientError::Io(_)));
    }
}
