//! A blocking NDJSON client for `stgd`, used by `stgcheck --server`,
//! the bench harness's `server-bench` mode and the integration tests.
//!
//! The client is deliberately thin: it frames request lines, parses
//! response lines, and surfaces the protocol's `id` correlation so a
//! caller pipelining a batch can match completion-order responses
//! back to its jobs.

use std::fmt;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

use csc_core::{Engine, Property};

use crate::json::{self, Value};
use crate::protocol::{encode_check_request, BudgetSpec, CheckRequest};

/// A failure talking to the server.
#[derive(Debug)]
pub enum ClientError {
    /// The TCP transport failed (connect, read or write).
    Io(io::Error),
    /// The server's line was not a valid response object, or the
    /// connection closed while a response was still expected.
    Protocol(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// One decoded response to a `check` request.
#[derive(Debug, Clone)]
pub struct CheckResponse {
    /// The correlation id echoed by the server (absent only for
    /// errors on requests whose id never parsed).
    pub id: Option<String>,
    /// Protocol revision of the response. Revision-1 servers did not
    /// stamp the field, so an absent `proto` decodes as `1`; revision
    /// 2 added the optional `report.bdd` stats object (see
    /// [`Self::bdd_stats`]).
    pub proto: u64,
    /// `"ok"` or `"error"`.
    pub status: String,
    /// `"holds"`, `"violated"` or `"unknown"` when `status == "ok"`.
    pub verdict: Option<String>,
    /// Machine-readable exhaustion code when the verdict is unknown.
    pub reason: Option<String>,
    /// The engine that ran the job.
    pub engine: Option<String>,
    /// For composite engines, the member whose verdict was adopted.
    pub winner: Option<String>,
    /// The error message when `status == "error"`.
    pub error: Option<String>,
    /// Stable machine-readable error code when `status == "error"`
    /// and the server classified the failure (e.g. `queue_full`).
    pub code: Option<String>,
    /// Worker-side wall-clock of the check itself.
    pub elapsed_ms: Option<f64>,
    /// The complete response object (witness, resource report, …).
    pub raw: Value,
}

impl CheckResponse {
    fn from_value(raw: Value) -> Result<Self, ClientError> {
        let status = raw
            .get("status")
            .and_then(Value::as_str)
            .ok_or_else(|| ClientError::Protocol("response without `status`".to_owned()))?
            .to_owned();
        let text = |key: &str| raw.get(key).and_then(Value::as_str).map(str::to_owned);
        Ok(CheckResponse {
            id: text("id"),
            proto: raw.get("proto").and_then(Value::as_u64).unwrap_or(1),
            status,
            verdict: text("verdict"),
            reason: text("reason"),
            engine: text("engine"),
            winner: text("winner"),
            error: text("error"),
            code: text("code"),
            elapsed_ms: raw
                .get("report")
                .and_then(|r| r.get("elapsed_ms"))
                .and_then(Value::as_f64),
            raw,
        })
    }

    /// Whether the server decided the property (`holds`/`violated`).
    pub fn is_conclusive(&self) -> bool {
        matches!(self.verdict.as_deref(), Some("holds" | "violated"))
    }

    /// The revision-2 `report.bdd` stats object, when the job's
    /// engine touched the symbolic stage. `None` on revision-1
    /// responses and for engines that never built a BDD, so callers
    /// need no protocol-version branch of their own.
    pub fn bdd_stats(&self) -> Option<&Value> {
        self.raw
            .get("report")
            .and_then(|r| r.get("bdd"))
            .filter(|v| !v.is_null())
    }

    /// The revision-3 `report.lint` summary object, when the server
    /// ran the pre-engine lint stage for the job. `None` on older
    /// revisions and on servers with prelint disabled, so callers
    /// need no protocol-version branch of their own.
    pub fn lint_summary(&self) -> Option<&Value> {
        self.raw
            .get("report")
            .and_then(|r| r.get("lint"))
            .filter(|v| !v.is_null())
    }

    /// The revision-3 `diagnostics` array of a `lint_rejected`
    /// admission error: one object per finding with `code`,
    /// `severity`, `line`/`col` span and `message`.
    pub fn diagnostics(&self) -> Option<&Value> {
        self.raw.get("diagnostics").filter(|v| !v.is_null())
    }
}

/// A blocking connection to one `stgd` server.
pub struct Client {
    writer: BufWriter<TcpStream>,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects to a running server.
    ///
    /// # Errors
    ///
    /// Propagates connect/clone failures as [`ClientError::Io`].
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        let read_half = stream.try_clone()?;
        Ok(Client {
            writer: BufWriter::new(stream),
            reader: BufReader::new(read_half),
        })
    }

    /// Sends one raw request line and reads one response line —
    /// only valid while no pipelined responses are pending.
    ///
    /// # Errors
    ///
    /// Transport failures and unparsable response lines.
    pub fn round_trip(&mut self, line: &str) -> Result<Value, ClientError> {
        self.send_line(line)?;
        self.read_value()
    }

    /// Queues a `check` without waiting; pair with
    /// [`Self::read_response`], matching responses by id.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn submit(&mut self, request: &CheckRequest) -> Result<(), ClientError> {
        self.send_line(&encode_check_request(request))
    }

    /// Reads the next response line as a [`CheckResponse`]. With
    /// pipelined submissions these arrive in *completion* order.
    ///
    /// # Errors
    ///
    /// Transport failures, EOF, or an unparsable response.
    pub fn read_response(&mut self) -> Result<CheckResponse, ClientError> {
        CheckResponse::from_value(self.read_value()?)
    }

    /// Convenience single-job check: submit and wait for its verdict.
    ///
    /// # Errors
    ///
    /// Transport failures or an unparsable response.
    pub fn check(
        &mut self,
        id: &str,
        stg_g: &str,
        property: Property,
        engine: Option<Engine>,
        budget: BudgetSpec,
    ) -> Result<CheckResponse, ClientError> {
        self.submit(&CheckRequest {
            id: id.to_owned(),
            stg_g: stg_g.to_owned(),
            property,
            engine,
            budget,
        })?;
        self.read_response()
    }

    /// Fetches the service counters.
    ///
    /// # Errors
    ///
    /// Transport failures or an unparsable response.
    pub fn stats(&mut self) -> Result<Value, ClientError> {
        self.round_trip(r#"{"op":"stats"}"#)
    }

    /// Requests graceful shutdown and returns the acknowledgement.
    ///
    /// # Errors
    ///
    /// Transport failures or an unparsable response.
    pub fn shutdown(&mut self) -> Result<Value, ClientError> {
        self.round_trip(r#"{"op":"shutdown"}"#)
    }

    fn send_line(&mut self, line: &str) -> Result<(), ClientError> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        Ok(())
    }

    fn read_value(&mut self) -> Result<Value, ClientError> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(ClientError::Protocol(
                "connection closed while awaiting a response".to_owned(),
            ));
        }
        json::parse(line.trim())
            .map_err(|e| ClientError::Protocol(format!("unparsable response line: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn revision_1_responses_without_proto_still_decode() {
        let raw = json::parse(
            r#"{"id":"a","status":"ok","verdict":"holds",
                "report":{"elapsed_ms":1.0,"bdd_nodes":null}}"#,
        )
        .unwrap();
        let response = CheckResponse::from_value(raw).unwrap();
        assert_eq!(response.proto, 1);
        assert_eq!(response.verdict.as_deref(), Some("holds"));
        assert!(response.bdd_stats().is_none());
    }

    #[test]
    fn revision_2_responses_surface_the_bdd_stats() {
        let raw = json::parse(
            r#"{"id":"b","proto":2,"status":"ok","verdict":"violated",
                "report":{"elapsed_ms":1.0,
                          "bdd":{"live_nodes":10,"peak_live_nodes":20,
                                 "gc_runs":1,"reorder_passes":0,
                                 "order":[0,1]}}}"#,
        )
        .unwrap();
        let response = CheckResponse::from_value(raw).unwrap();
        assert_eq!(response.proto, 2);
        let bdd = response.bdd_stats().expect("bdd stats");
        assert_eq!(bdd.get("peak_live_nodes").and_then(Value::as_u64), Some(20));
    }

    #[test]
    fn revision_2_null_bdd_reads_as_absent() {
        let raw = json::parse(
            r#"{"id":"c","proto":2,"status":"ok","verdict":"holds",
                "report":{"elapsed_ms":1.0,"bdd":null}}"#,
        )
        .unwrap();
        let response = CheckResponse::from_value(raw).unwrap();
        assert_eq!(response.proto, 2);
        assert!(response.bdd_stats().is_none());
    }
}
