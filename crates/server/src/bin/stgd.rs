//! `stgd` — the STG verification service daemon.
//!
//! ```text
//! stgd [--addr HOST:PORT] [--workers N] [--engine NAME] [--timeout-ms MS]
//!      [--max-queue N] [--client-quota N] [--write-timeout-ms MS]
//!      [--response-buffer N] [--hung-job-ms MS] [--cache-entries N]
//!      [--unfold-threads N]
//! ```
//!
//! Prints `listening on ADDR` once the socket is bound (port 0 is
//! resolved, so scripts can parse the line), then serves until a
//! client sends `{"op":"shutdown"}` or the process receives
//! SIGTERM/SIGINT, at which point in-flight jobs are drained and
//! answered before exit.

use std::io::Write;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use server::protocol::engine_from_str;
use server::{spawn, ServerConfig};

/// Set from the signal handler; polled by the main loop.
static TERMINATE: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_signal_handlers() {
    // Hand-rolled signal(2) binding: the handler only flips an
    // AtomicBool, which is async-signal-safe.
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    extern "C" fn on_terminate(_signum: i32) {
        TERMINATE.store(true, Ordering::Relaxed);
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_terminate);
        signal(SIGINT, on_terminate);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

fn usage() -> ! {
    eprintln!(
        "usage: stgd [--addr HOST:PORT] [--workers N] [--engine NAME] [--timeout-ms MS]\n\
         \u{20}           [--max-queue N] [--client-quota N] [--write-timeout-ms MS]\n\
         \u{20}           [--response-buffer N] [--hung-job-ms MS] [--cache-entries N]\n\
         \u{20}           [--unfold-threads N]\n\
         \n\
         --addr HOST:PORT      listen address (default 127.0.0.1:7570; port 0 = ephemeral)\n\
         --workers N           worker threads (default 4)\n\
         --engine NAME         default engine: unfolding|explicit|symbolic|portfolio|race\n\
         \u{20}                     (default race)\n\
         --timeout-ms MS       default per-job wall-clock budget when a job sets none\n\
         --max-queue N         reject checks beyond N queued jobs with the `queue_full`\n\
         \u{20}                     error code (default 1024; 0 means unbounded)\n\
         --client-quota N      reject checks beyond N queued jobs per client with the\n\
         \u{20}                     `over_quota` error code (default none; 0 means none)\n\
         --write-timeout-ms MS patience for a stalled client before its connection is\n\
         \u{20}                     dropped (default 10000; 0 disables the timeout)\n\
         --response-buffer N   per-connection response lines buffered for the writer\n\
         \u{20}                     (default 1024)\n\
         --hung-job-ms MS      watchdog bound: cancel any job executing longer than MS\n\
         \u{20}                     (default off; 0 also means off)\n\
         --cache-entries N     artifact-cache capacity in resident STGs (default 64;\n\
         \u{20}                     0 disables caching)\n\
         --unfold-threads N    threads for parallel possible-extensions discovery per\n\
         \u{20}                     prefix build (default serial; 0 = auto-detect); the\n\
         \u{20}                     prefix is bit-identical for every setting"
    );
    std::process::exit(2);
}

fn parse_args() -> ServerConfig {
    let mut config = ServerConfig {
        addr: "127.0.0.1:7570".to_owned(),
        ..Default::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| match args.next() {
            Some(v) => v,
            None => {
                eprintln!("stgd: {name} needs a value");
                usage();
            }
        };
        match arg.as_str() {
            "--addr" => config.addr = value("--addr"),
            "--workers" => match value("--workers").parse::<usize>() {
                Ok(n) if n > 0 => config.workers = n,
                _ => {
                    eprintln!("stgd: --workers needs a positive integer");
                    usage();
                }
            },
            "--engine" => {
                let name = value("--engine");
                match engine_from_str(&name) {
                    Some(engine) => config.default_engine = engine,
                    None => {
                        eprintln!("stgd: unknown engine `{name}`");
                        usage();
                    }
                }
            }
            "--timeout-ms" => match value("--timeout-ms").parse::<u64>() {
                Ok(ms) => config.default_timeout_ms = Some(ms),
                Err(_) => {
                    eprintln!("stgd: --timeout-ms needs an integer");
                    usage();
                }
            },
            "--max-queue" => match value("--max-queue").parse::<usize>() {
                Ok(0) => config.max_queue = None,
                Ok(n) => config.max_queue = Some(n),
                Err(_) => {
                    eprintln!("stgd: --max-queue needs a non-negative integer");
                    usage();
                }
            },
            "--client-quota" => match value("--client-quota").parse::<usize>() {
                Ok(0) => config.client_quota = None,
                Ok(n) => config.client_quota = Some(n),
                Err(_) => {
                    eprintln!("stgd: --client-quota needs a non-negative integer");
                    usage();
                }
            },
            "--write-timeout-ms" => match value("--write-timeout-ms").parse::<u64>() {
                Ok(0) => config.write_timeout_ms = None,
                Ok(ms) => config.write_timeout_ms = Some(ms),
                Err(_) => {
                    eprintln!("stgd: --write-timeout-ms needs a non-negative integer");
                    usage();
                }
            },
            "--response-buffer" => match value("--response-buffer").parse::<usize>() {
                Ok(n) if n > 0 => config.response_buffer = n,
                _ => {
                    eprintln!("stgd: --response-buffer needs a positive integer");
                    usage();
                }
            },
            "--hung-job-ms" => match value("--hung-job-ms").parse::<u64>() {
                Ok(0) => config.hung_job_ms = None,
                Ok(ms) => config.hung_job_ms = Some(ms),
                Err(_) => {
                    eprintln!("stgd: --hung-job-ms needs a non-negative integer");
                    usage();
                }
            },
            "--cache-entries" => match value("--cache-entries").parse::<usize>() {
                Ok(n) => config.cache_entries = n,
                Err(_) => {
                    eprintln!("stgd: --cache-entries needs a non-negative integer");
                    usage();
                }
            },
            "--unfold-threads" => match value("--unfold-threads").parse::<usize>() {
                Ok(n) => config.unfold_threads = Some(n),
                Err(_) => {
                    eprintln!("stgd: --unfold-threads needs a non-negative integer");
                    usage();
                }
            },
            "--help" | "-h" => usage(),
            other => {
                eprintln!("stgd: unknown flag `{other}`");
                usage();
            }
        }
    }
    config
}

fn main() -> ExitCode {
    install_signal_handlers();
    let config = parse_args();
    let workers = config.workers;
    let engine = config.default_engine.name();
    let handle = match spawn(config) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("stgd: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Scripts commonly parse the first banner line and close the
    // pipe; `println!` would panic the main thread on the resulting
    // EPIPE and take the whole daemon down, so ignore write errors.
    let mut stdout = std::io::stdout();
    let _ = writeln!(stdout, "listening on {}", handle.addr());
    let _ = writeln!(stdout, "workers {workers}, default engine {engine}");
    let _ = stdout.flush();
    while !handle.is_shutting_down() {
        if TERMINATE.load(Ordering::Relaxed) {
            eprintln!("stgd: termination signal, draining in-flight jobs");
            handle.trigger_shutdown();
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    handle.join();
    eprintln!("stgd: drained, exiting");
    ExitCode::SUCCESS
}
