//! The `stgd` service: a TCP listener, a fixed worker pool, and the
//! shared job queue between them.
//!
//! Every accepted connection gets a reader thread (decoding request
//! lines) and a writer thread (serialising response lines); `check`
//! jobs flow through one process-wide queue — optionally bounded by
//! [`ServerConfig::max_queue`], rejecting overflow with the
//! `queue_full` error code — onto the worker pool, so a single slow
//! connection cannot starve the others. Workers decide each job with
//! [`csc_core::CheckRequest`] over an [`ArtifactCache`] keyed
//! by canonical STG hash, so repeated nets skip prefix construction
//! entirely — by default with the racing parallel portfolio — under
//! the job's own [`csc_core::Budget`] plus a per-job [`CancelToken`] the
//! shutdown path flips. Graceful shutdown drains: queued and
//! in-flight jobs still produce responses (cancelled ones answer
//! `unknown`/`cancelled`), then threads are joined and the listener
//! closes.

use std::collections::VecDeque;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use csc_core::{CancelToken, Engine};
use stg::Stg;

use crate::cache::ArtifactCache;
use crate::json::Value;
use crate::protocol::{
    decode_request, encode_check_response, encode_error_response, encode_error_response_with_code,
    encode_lint_rejected, CheckRequest, Request,
};

/// Tuning knobs of one [`spawn`]ed service.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address; use port 0 for an ephemeral port (the bound
    /// address is reported by [`ServerHandle::addr`]).
    pub addr: String,
    /// Worker threads deciding jobs concurrently.
    pub workers: usize,
    /// Engine used when a request does not name one.
    pub default_engine: Engine,
    /// Wall-clock allowance applied to jobs that do not set their
    /// own `timeout_ms`; `None` leaves such jobs unlimited.
    pub default_timeout_ms: Option<u64>,
    /// Maximum queued (not yet executing) jobs; further `check`
    /// requests are rejected with the `queue_full` error code.
    /// `None` leaves the queue unbounded.
    pub max_queue: Option<usize>,
    /// Artifact-cache capacity in resident STGs (keyed by canonical
    /// content hash); `0` disables caching.
    pub cache_entries: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 4,
            default_engine: Engine::Race,
            default_timeout_ms: None,
            max_queue: None,
            cache_entries: 64,
        }
    }
}

/// Aggregated service counters, snapshot by the `stats` op.
#[derive(Debug, Clone, Default)]
struct Stats {
    jobs_received: u64,
    jobs_completed: u64,
    jobs_errored: u64,
    jobs_rejected: u64,
    in_flight: u64,
    max_queue_depth: u64,
    holds: u64,
    violated: u64,
    unknown: u64,
    /// Jobs answered by the lint LP proof alone — no engine ran.
    lint_proved: u64,
    /// Race outcomes keyed like [`RACER_NAMES`].
    race_wins: [u64; 3],
    /// Races some *other* engine won while this one was retired.
    race_cancelled: [u64; 3],
    race_inconclusive: u64,
    latency_total_ms: f64,
    latency_max_ms: f64,
}

/// Engine-name order of the per-racer stats arrays.
const RACER_NAMES: [&str; 3] = ["unfolding-ilp", "explicit", "symbolic"];

/// One queued verification job. The STG was already parsed (and
/// structurally linted) at admission, so workers never re-parse.
struct Job {
    request: CheckRequest,
    stg: Stg,
    cancel: CancelToken,
    enqueued: Instant,
    reply: Sender<String>,
}

struct Shared {
    config: ServerConfig,
    shutdown: AtomicBool,
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    stats: Mutex<Stats>,
    /// Cancellation tokens of all live (queued or executing) jobs,
    /// flipped together on shutdown so the drain is prompt.
    live_tokens: Mutex<Vec<CancelToken>>,
    /// Verification artifacts keyed by canonical STG hash, shared
    /// across jobs, workers and engines.
    cache: ArtifactCache,
}

impl Shared {
    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }

    fn trigger_shutdown(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Ok(tokens) = self.live_tokens.lock() {
            for token in tokens.iter() {
                token.cancel();
            }
        }
        self.available.notify_all();
    }

    fn stats_response(&self) -> String {
        let queue_depth = self.queue.lock().map(|q| q.len()).unwrap_or(0);
        let stats = match self.stats.lock() {
            Ok(s) => s.clone(),
            Err(_) => Stats::default(),
        };
        let mean = if stats.jobs_completed > 0 {
            stats.latency_total_ms / stats.jobs_completed as f64
        } else {
            0.0
        };
        let per_racer = |values: [u64; 3]| {
            Value::Obj(
                RACER_NAMES
                    .iter()
                    .zip(values)
                    .map(|(name, v)| ((*name).to_owned(), Value::from(v)))
                    .collect(),
            )
        };
        Value::Obj(vec![
            ("status".to_owned(), Value::from("ok")),
            (
                "stats".to_owned(),
                Value::Obj(vec![
                    ("workers".to_owned(), Value::from(self.config.workers)),
                    (
                        "default_engine".to_owned(),
                        Value::from(self.config.default_engine.name()),
                    ),
                    ("queue_depth".to_owned(), Value::from(queue_depth)),
                    (
                        "max_queue_depth".to_owned(),
                        Value::from(stats.max_queue_depth),
                    ),
                    ("in_flight".to_owned(), Value::from(stats.in_flight)),
                    ("jobs_received".to_owned(), Value::from(stats.jobs_received)),
                    (
                        "jobs_completed".to_owned(),
                        Value::from(stats.jobs_completed),
                    ),
                    ("jobs_errored".to_owned(), Value::from(stats.jobs_errored)),
                    ("jobs_rejected".to_owned(), Value::from(stats.jobs_rejected)),
                    (
                        "verdicts".to_owned(),
                        Value::Obj(vec![
                            ("holds".to_owned(), Value::from(stats.holds)),
                            ("violated".to_owned(), Value::from(stats.violated)),
                            ("unknown".to_owned(), Value::from(stats.unknown)),
                        ]),
                    ),
                    ("lint_proved".to_owned(), Value::from(stats.lint_proved)),
                    (
                        "race".to_owned(),
                        Value::Obj(vec![
                            ("wins".to_owned(), per_racer(stats.race_wins)),
                            ("cancelled".to_owned(), per_racer(stats.race_cancelled)),
                            (
                                "inconclusive".to_owned(),
                                Value::from(stats.race_inconclusive),
                            ),
                        ]),
                    ),
                    (
                        "latency_ms".to_owned(),
                        Value::Obj(vec![
                            ("mean".to_owned(), Value::from(mean)),
                            ("max".to_owned(), Value::from(stats.latency_max_ms)),
                            ("total".to_owned(), Value::from(stats.latency_total_ms)),
                        ]),
                    ),
                    ("cache".to_owned(), {
                        let cache = self.cache.stats();
                        Value::Obj(vec![
                            ("hits".to_owned(), Value::from(cache.hits)),
                            ("misses".to_owned(), Value::from(cache.misses)),
                            ("evictions".to_owned(), Value::from(cache.evictions)),
                            ("entries".to_owned(), Value::from(cache.entries)),
                            ("capacity".to_owned(), Value::from(cache.capacity)),
                        ])
                    }),
                ]),
            ),
        ])
        .render()
    }
}

/// A running service. Dropping the handle does *not* stop the server;
/// call [`ServerHandle::shutdown`].
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound listen address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests graceful shutdown without waiting: stop accepting,
    /// cancel live jobs, let workers drain.
    pub fn trigger_shutdown(&self) {
        self.shared.trigger_shutdown();
    }

    /// Whether shutdown has been requested (by this handle, a client
    /// `shutdown` op, or a signal).
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutting_down()
    }

    /// Triggers shutdown and joins every service thread, returning
    /// once all in-flight jobs have produced responses.
    pub fn shutdown(mut self) {
        self.shared.trigger_shutdown();
        self.join_threads();
    }

    /// Blocks until the server shuts down by another path (client
    /// `shutdown` op or signal-triggered [`Self::trigger_shutdown`]).
    pub fn join(mut self) {
        self.join_threads();
    }

    fn join_threads(&mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        // A dropped handle of an already-stopping server still joins,
        // so tests cannot leak threads; an active server is left
        // running (detached) as documented.
        if self.shared.shutting_down() {
            self.join_threads();
        }
    }
}

/// Binds the listener and starts the accept loop plus the worker
/// pool.
///
/// # Errors
///
/// Propagates the `bind` failure; everything after binding runs on
/// background threads.
pub fn spawn(config: ServerConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let shared = Arc::new(Shared {
        shutdown: AtomicBool::new(false),
        queue: Mutex::new(VecDeque::new()),
        available: Condvar::new(),
        stats: Mutex::new(Stats::default()),
        live_tokens: Mutex::new(Vec::new()),
        cache: ArtifactCache::new(config.cache_entries),
        config: config.clone(),
    });
    let workers = (0..config.workers.max(1))
        .map(|_| {
            let shared = Arc::clone(&shared);
            thread::spawn(move || worker_loop(&shared))
        })
        .collect();
    let accept_shared = Arc::clone(&shared);
    let accept_thread = thread::spawn(move || accept_loop(&listener, &accept_shared));
    Ok(ServerHandle {
        addr,
        shared,
        accept_thread: Some(accept_thread),
        workers,
    })
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    let mut connections: Vec<JoinHandle<()>> = Vec::new();
    while !shared.shutting_down() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let shared = Arc::clone(shared);
                connections.push(thread::spawn(move || {
                    handle_connection(stream, &shared);
                }));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(10));
            }
            Err(_) => thread::sleep(Duration::from_millis(10)),
        }
        connections.retain(|c| !c.is_finished());
    }
    for c in connections {
        let _ = c.join();
    }
}

/// Reads request lines until EOF or shutdown; responses are funnelled
/// through a dedicated writer thread so worker replies and inline
/// replies (stats, protocol errors) never interleave mid-line.
fn handle_connection(stream: TcpStream, shared: &Arc<Shared>) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    // Short read timeout so the reader notices shutdown while idle.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let (reply_tx, reply_rx) = mpsc::channel::<String>();
    let writer = thread::spawn(move || writer_loop(write_half, &reply_rx));
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => break, // EOF: client is done.
            Ok(_) => {
                let trimmed = line.trim();
                if !trimmed.is_empty() {
                    handle_request_line(trimmed, shared, &reply_tx);
                }
                line.clear();
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                // A timeout may land mid-line; `read_line` has already
                // appended the bytes it got, so keep `line` and let the
                // next iteration append the rest of the request.
                if shared.shutting_down() {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    drop(reply_tx);
    let _ = writer.join();
}

fn writer_loop(stream: TcpStream, replies: &mpsc::Receiver<String>) {
    let mut out = io::BufWriter::new(stream);
    while let Ok(response) = replies.recv() {
        if out
            .write_all(response.as_bytes())
            .and_then(|()| out.write_all(b"\n"))
            .and_then(|()| out.flush())
            .is_err()
        {
            // Client hung up; drain remaining replies so job senders
            // never block (they use an unbounded channel anyway).
            break;
        }
    }
}

fn handle_request_line(line: &str, shared: &Arc<Shared>, reply: &Sender<String>) {
    match decode_request(line) {
        Err(e) => {
            if let Ok(mut stats) = shared.stats.lock() {
                stats.jobs_errored += 1;
            }
            let _ = reply.send(encode_error_response(e.id.as_deref(), &e.message));
        }
        Ok(Request::Stats) => {
            let _ = reply.send(shared.stats_response());
        }
        Ok(Request::Shutdown) => {
            let _ = reply.send(
                Value::Obj(vec![
                    ("status".to_owned(), Value::from("ok")),
                    ("shutting_down".to_owned(), Value::from(true)),
                ])
                .render(),
            );
            shared.trigger_shutdown();
        }
        Ok(Request::Check(request)) => {
            if shared.shutting_down() {
                let _ = reply.send(encode_error_response(
                    Some(&request.id),
                    "server is shutting down",
                ));
                return;
            }
            // Admission lint: parse failures and structurally broken
            // nets are rejected here on the reader thread — cheap
            // graph checks only (no LP) — so garbage never consumes a
            // queue slot or a worker. The job carries the parsed STG
            // so workers never re-parse.
            let options = lint::LintOptions {
                lp: false,
                ..Default::default()
            };
            let outcome = lint::lint_bytes(request.stg_g.as_bytes(), &options);
            let stg = match outcome.stg {
                Some(stg) if !outcome.report.has_errors() => stg,
                _ => {
                    if let Ok(mut stats) = shared.stats.lock() {
                        stats.jobs_rejected += 1;
                    }
                    let _ = reply.send(encode_lint_rejected(Some(&request.id), &outcome.report));
                    return;
                }
            };
            let cancel = CancelToken::new();
            if let Ok(mut tokens) = shared.live_tokens.lock() {
                tokens.push(cancel.clone());
            }
            // trigger_shutdown() may have swept live_tokens between
            // the shutting_down() check above and the push; re-check
            // so a job slipping through that window is still cancelled
            // and cannot stall the drain.
            if shared.shutting_down() {
                cancel.cancel();
            }
            let job = Job {
                request,
                stg,
                cancel,
                enqueued: Instant::now(),
                reply: reply.clone(),
            };
            // Admission and the bound check happen under one queue
            // lock, so the bound is exact even with many connection
            // readers racing.
            let depth = {
                let Ok(mut queue) = shared.queue.lock() else {
                    return;
                };
                if let Some(max) = shared.config.max_queue {
                    if queue.len() >= max {
                        drop(queue);
                        if let Ok(mut tokens) = shared.live_tokens.lock() {
                            tokens.retain(|t| !t.same_token(&job.cancel));
                        }
                        if let Ok(mut stats) = shared.stats.lock() {
                            stats.jobs_rejected += 1;
                        }
                        let _ = job.reply.send(encode_error_response_with_code(
                            Some(&job.request.id),
                            "queue_full",
                            &format!("job queue is full ({max} queued jobs); retry later"),
                        ));
                        return;
                    }
                }
                queue.push_back(job);
                queue.len() as u64
            };
            if let Ok(mut stats) = shared.stats.lock() {
                stats.jobs_received += 1;
                stats.max_queue_depth = stats.max_queue_depth.max(depth);
            }
            shared.available.notify_one();
        }
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let job = {
            let Ok(mut queue) = shared.queue.lock() else {
                return;
            };
            loop {
                if let Some(job) = queue.pop_front() {
                    break Some(job);
                }
                if shared.shutting_down() {
                    break None; // Queue drained, shutdown requested.
                }
                match shared
                    .available
                    .wait_timeout(queue, Duration::from_millis(50))
                {
                    Ok((q, _)) => queue = q,
                    Err(_) => return,
                }
            }
        };
        let Some(job) = job else { return };
        if let Ok(mut stats) = shared.stats.lock() {
            stats.in_flight += 1;
        }
        process_job(&job, shared);
        if let Ok(mut stats) = shared.stats.lock() {
            stats.in_flight -= 1;
        }
        // Completed jobs no longer need their shutdown hook.
        if let Ok(mut tokens) = shared.live_tokens.lock() {
            tokens.retain(|t| !t.same_token(&job.cancel));
        }
    }
}

fn process_job(job: &Job, shared: &Arc<Shared>) {
    let request = &job.request;
    let stg = &job.stg;
    let mut budget = request.budget.to_budget();
    if budget.deadline.is_none() {
        budget.deadline = shared.config.default_timeout_ms.map(Duration::from_millis);
    }
    budget.cancel = Some(job.cancel.clone());
    let engine = request.engine.unwrap_or(shared.config.default_engine);
    let property = request.property;
    // Content-addressed reuse: a repeat of a cached net skips prefix
    // construction, state-graph exploration and BDD re-encoding.
    let (artifacts, _cache_hit) = shared.cache.get_or_insert(stg);
    // The wire `CheckRequest` above describes the job; this one runs
    // it (`csc_core`'s builder shares the name). Prelint is on: a
    // family whose property the LP relaxation proves answers without
    // any engine touching the state space, and the proof is cached in
    // the shared artifacts for repeat nets.
    let result = csc_core::CheckRequest::new(stg, property)
        .engine(engine)
        .budget(budget)
        .artifacts(&artifacts)
        .prelint(true)
        .run();
    let response = match result {
        Ok(run) => {
            let latency_ms = job.enqueued.elapsed().as_secs_f64() * 1e3;
            if let Ok(mut stats) = shared.stats.lock() {
                stats.jobs_completed += 1;
                stats.latency_total_ms += latency_ms;
                stats.latency_max_ms = stats.latency_max_ms.max(latency_ms);
                match run.verdict.holds() {
                    Some(true) => stats.holds += 1,
                    Some(false) => stats.violated += 1,
                    None => stats.unknown += 1,
                }
                let lint_proved = run.report.lint.is_some_and(|l| l.proved);
                if lint_proved {
                    stats.lint_proved += 1;
                }
                // Race attribution only applies when the racers
                // actually started; a lint-proved job never spawned
                // them.
                if run.report.engine == "race" && !lint_proved {
                    match run.report.winner {
                        Some(winner) => {
                            for (i, name) in RACER_NAMES.iter().enumerate() {
                                if *name == winner {
                                    stats.race_wins[i] += 1;
                                } else {
                                    stats.race_cancelled[i] += 1;
                                }
                            }
                        }
                        None => stats.race_inconclusive += 1,
                    }
                }
            }
            encode_check_response(&request.id, stg, &run)
        }
        Err(e) => {
            if let Ok(mut stats) = shared.stats.lock() {
                stats.jobs_errored += 1;
            }
            encode_error_response(Some(&request.id), &e.to_string())
        }
    };
    let _ = job.reply.send(response);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use crate::protocol::BudgetSpec;
    use csc_core::Property;
    use stg::gen::vme::vme_read;

    fn local_server(workers: usize) -> ServerHandle {
        spawn(ServerConfig {
            workers,
            ..Default::default()
        })
        .expect("bind ephemeral port")
    }

    #[test]
    fn serves_a_check_and_stats_round_trip() {
        let server = local_server(2);
        let mut client = Client::connect(server.addr()).expect("connect");
        let g = stg::to_g_format(&vme_read(), "vme");
        let response = client
            .check("j1", &g, Property::Csc, None, BudgetSpec::default())
            .expect("check");
        assert_eq!(response.verdict.as_deref(), Some("violated"));
        assert_eq!(response.engine.as_deref(), Some("race"));
        assert!(response.winner.is_some());
        let stats = client.stats().expect("stats");
        assert_eq!(
            stats
                .get("stats")
                .and_then(|s| s.get("jobs_completed"))
                .and_then(Value::as_u64),
            Some(1)
        );
        server.shutdown();
    }

    #[test]
    fn request_lines_spanning_read_timeouts_are_not_lost() {
        let server = local_server(1);
        let mut stream = TcpStream::connect(server.addr()).expect("connect");
        // Deliver one request in two writes separated by well over the
        // 100ms reader timeout: the partial head must survive the
        // timed-out read_line instead of being cleared.
        let request = "{\"op\":\"stats\"}\n";
        let (head, tail) = request.split_at(7);
        stream.write_all(head.as_bytes()).expect("write head");
        stream.flush().expect("flush head");
        thread::sleep(Duration::from_millis(300));
        stream.write_all(tail.as_bytes()).expect("write tail");
        stream.flush().expect("flush tail");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("read reply");
        let v = crate::json::parse(reply.trim()).expect("valid NDJSON reply");
        assert_eq!(v.get("status").and_then(Value::as_str), Some("ok"));
        server.shutdown();
    }

    #[test]
    fn malformed_lines_get_error_responses_not_disconnects() {
        let server = local_server(1);
        let mut client = Client::connect(server.addr()).expect("connect");
        let v = client
            .round_trip("{\"op\":\"check\",\"id\":\"bad\"}")
            .expect("reply");
        assert_eq!(v.get("status").and_then(Value::as_str), Some("error"));
        assert_eq!(v.get("id").and_then(Value::as_str), Some("bad"));
        // The connection survives and serves the next request.
        let stats = client.stats().expect("stats after error");
        assert_eq!(stats.get("status").and_then(Value::as_str), Some("ok"));
        server.shutdown();
    }

    #[test]
    fn repeat_jobs_hit_the_artifact_cache() {
        let server = local_server(2);
        let mut client = Client::connect(server.addr()).expect("connect");
        let g = stg::to_g_format(&vme_read(), "vme");
        for (i, property) in ["usc", "csc"].iter().enumerate() {
            let property = crate::protocol::property_from_str(property).unwrap();
            let response = client
                .check(&format!("j{i}"), &g, property, None, BudgetSpec::default())
                .expect("check");
            assert_eq!(response.verdict.as_deref(), Some("violated"));
        }
        let stats = client.stats().expect("stats");
        let cache = stats
            .get("stats")
            .and_then(|s| s.get("cache"))
            .expect("cache stats present");
        assert_eq!(cache.get("misses").and_then(Value::as_u64), Some(1));
        assert_eq!(cache.get("hits").and_then(Value::as_u64), Some(1));
        assert_eq!(cache.get("entries").and_then(Value::as_u64), Some(1));
        assert_eq!(cache.get("evictions").and_then(Value::as_u64), Some(0));
        server.shutdown();
    }

    #[test]
    fn warm_checks_report_zero_prefix_events_built() {
        let server = spawn(ServerConfig {
            default_engine: Engine::UnfoldingIlp,
            ..Default::default()
        })
        .expect("bind");
        let mut client = Client::connect(server.addr()).expect("connect");
        let g = stg::to_g_format(&vme_read(), "vme");
        let built = |response: &crate::client::CheckResponse| {
            response
                .raw
                .get("report")
                .and_then(|r| r.get("prefix_events_built"))
                .and_then(Value::as_u64)
        };
        let cold = client
            .check("cold", &g, Property::Csc, None, BudgetSpec::default())
            .expect("cold check");
        assert!(built(&cold).is_some_and(|n| n > 0), "{:?}", cold.raw);
        let warm = client
            .check("warm", &g, Property::Csc, None, BudgetSpec::default())
            .expect("warm check");
        assert_eq!(built(&warm), Some(0), "{:?}", warm.raw);
        assert_eq!(cold.verdict, warm.verdict);
        server.shutdown();
    }

    #[test]
    fn full_queue_rejects_checks_with_a_stable_code() {
        // No workers ever pop: zero capacity means every check is
        // rejected at admission.
        let server = spawn(ServerConfig {
            workers: 1,
            max_queue: Some(0),
            ..Default::default()
        })
        .expect("bind");
        let mut client = Client::connect(server.addr()).expect("connect");
        let g = stg::to_g_format(&vme_read(), "vme");
        let response = client
            .check("jq", &g, Property::Csc, None, BudgetSpec::default())
            .expect("transport ok");
        assert_eq!(response.status, "error");
        assert_eq!(response.code.as_deref(), Some("queue_full"));
        assert_eq!(response.id.as_deref(), Some("jq"));
        // The connection survives; stats counted the rejection.
        let stats = client.stats().expect("stats");
        assert_eq!(
            stats
                .get("stats")
                .and_then(|s| s.get("jobs_rejected"))
                .and_then(Value::as_u64),
            Some(1)
        );
        assert_eq!(
            stats
                .get("stats")
                .and_then(|s| s.get("jobs_received"))
                .and_then(Value::as_u64),
            Some(0),
            "rejected jobs are not received jobs"
        );
        server.shutdown();
    }

    #[test]
    fn ill_formed_inputs_are_rejected_at_admission() {
        // Zero queue capacity would reject anything that reaches the
        // queue, so a lint_rejected response here proves the bad net
        // was turned away *before* admission — no queue slot, no
        // worker.
        let server = spawn(ServerConfig {
            workers: 1,
            max_queue: Some(0),
            ..Default::default()
        })
        .expect("bind");
        let mut client = Client::connect(server.addr()).expect("connect");
        let bad = ".model m\n.outputs a\n.graph\nb+ a+\n.marking { }\n.end\n";
        let response = client
            .check("jl", bad, Property::Csc, None, BudgetSpec::default())
            .expect("transport ok");
        assert_eq!(response.status, "error");
        assert_eq!(response.code.as_deref(), Some("lint_rejected"));
        assert_eq!(response.id.as_deref(), Some("jl"));
        let diags = response.diagnostics().expect("diagnostics array");
        let Value::Arr(items) = diags else {
            panic!("diagnostics is not an array: {diags:?}")
        };
        let first = items.first().expect("at least one diagnostic");
        assert_eq!(first.get("code").and_then(Value::as_str), Some("L003"));
        assert_eq!(first.get("severity").and_then(Value::as_str), Some("error"));
        assert_eq!(first.get("line").and_then(Value::as_u64), Some(4));
        assert_eq!(first.get("col").and_then(Value::as_u64), Some(1));
        // The rejection consumed neither a queue slot nor a worker.
        let stats = client.stats().expect("stats");
        let counter = |key: &str| {
            stats
                .get("stats")
                .and_then(|s| s.get(key))
                .and_then(Value::as_u64)
        };
        assert_eq!(counter("jobs_received"), Some(0));
        assert_eq!(counter("jobs_rejected"), Some(1));
        server.shutdown();
    }

    #[test]
    fn lint_proved_families_short_circuit_without_engines() {
        let server = spawn(ServerConfig {
            default_engine: Engine::UnfoldingIlp,
            ..Default::default()
        })
        .expect("bind");
        let mut client = Client::connect(server.addr()).expect("connect");
        let g = stg::to_g_format(&stg::gen::counterflow::counterflow_sym(2, 3), "cf");
        let response = client
            .check("jp", &g, Property::Usc, None, BudgetSpec::default())
            .expect("check");
        assert_eq!(
            response.verdict.as_deref(),
            Some("holds"),
            "{:?}",
            response.raw
        );
        assert_eq!(response.winner.as_deref(), Some("lint"));
        let report = response.raw.get("report").expect("report");
        assert_eq!(
            report.get("prefix_events_built").and_then(Value::as_u64),
            Some(0),
            "no engine may touch the state space"
        );
        let lint = response.lint_summary().expect("lint summary present");
        assert_eq!(lint.get("proved").and_then(Value::as_bool), Some(true));
        assert_eq!(lint.get("usc_proved").and_then(Value::as_bool), Some(true));
        assert_eq!(lint.get("errors").and_then(Value::as_u64), Some(0));
        server.shutdown();
    }

    #[test]
    fn client_shutdown_op_stops_the_server() {
        let server = local_server(1);
        let mut client = Client::connect(server.addr()).expect("connect");
        let ack = client.shutdown().expect("ack");
        assert_eq!(
            ack.get("shutting_down").and_then(Value::as_bool),
            Some(true)
        );
        server.join(); // Returns because the client op triggered shutdown.
    }
}
