//! The `stgd` service: a TCP listener, a supervised worker pool, and
//! the shared fair job queue between them.
//!
//! Every accepted connection gets a reader thread (decoding request
//! lines) and a writer thread (serialising response lines); `check`
//! jobs flow through one process-wide queue onto the worker pool, so
//! a single slow connection cannot starve the others. The queue is
//! *fair*: each connection has its own sub-queue and workers dequeue
//! round-robin across connections, so one client pipelining a huge
//! batch cannot monopolise the pool. Admission is bounded twice —
//! globally by [`ServerConfig::max_queue`] (the `queue_full` error
//! code) and per client by [`ServerConfig::client_quota`] (the
//! `over_quota` code); both load-shedding responses carry a
//! `retry_after_ms` hint sized from the pool's observed latency.
//!
//! Workers decide each job with [`csc_core::CheckRequest`] over an
//! [`ArtifactCache`] keyed by canonical STG hash, so repeated nets
//! skip prefix construction entirely — by default with the racing
//! parallel portfolio — under the job's own [`csc_core::Budget`] plus
//! a per-job [`CancelToken`] the shutdown path flips. A worker that
//! *panics* (engine panics are already contained by `catch_unwind`
//! inside `csc_core`; this guards everything else, including injected
//! faults) is supervised: the in-flight job is failed with the stable
//! `worker_crashed` error code, a replacement worker is spawned, and
//! the restart is counted in `stats`. A watchdog thread additionally
//! cancels jobs that exceed [`ServerConfig::hung_job_ms`].
//!
//! Slow clients cannot wedge the pool either: response lines flow
//! through a *bounded* per-connection buffer and the socket has a
//! write timeout, so a stalled reader eventually poisons its own
//! connection (counted in `stats`) instead of blocking a worker.
//!
//! Graceful shutdown drains: queued and in-flight jobs still produce
//! responses (cancelled ones answer `unknown`/`cancelled`), then
//! threads are joined and the listener closes.

use std::collections::{HashMap, VecDeque};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, SyncSender, TrySendError};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use csc_core::{CancelToken, Engine};
use stg::Stg;

use crate::cache::ArtifactCache;
use crate::failpoints;
use crate::json::Value;
use crate::protocol::{
    decode_request, encode_check_response, encode_error_response, encode_error_response_with_code,
    encode_lint_rejected, encode_overload_response, encode_synthesize_response, CheckRequest,
    Request, SynthesizeRequest,
};

/// Tuning knobs of one [`spawn`]ed service.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address; use port 0 for an ephemeral port (the bound
    /// address is reported by [`ServerHandle::addr`]).
    pub addr: String,
    /// Worker threads deciding jobs concurrently.
    pub workers: usize,
    /// Engine used when a request does not name one.
    pub default_engine: Engine,
    /// Wall-clock allowance applied to jobs that do not set their
    /// own `timeout_ms`; `None` leaves such jobs unlimited.
    pub default_timeout_ms: Option<u64>,
    /// Maximum queued (not yet executing) jobs; further `check`
    /// requests are rejected with the `queue_full` error code.
    /// `None` leaves the queue unbounded (the `stgd` binary maps
    /// `--max-queue 0` to `None`; the library default is bounded at
    /// 1024 so an unattended server cannot grow without limit).
    pub max_queue: Option<usize>,
    /// Maximum queued jobs *per client connection*; a client already
    /// at its quota has further `check` requests rejected with the
    /// `over_quota` error code. `None` disables the quota.
    pub client_quota: Option<usize>,
    /// Artifact-cache capacity in resident STGs (keyed by canonical
    /// content hash); `0` disables caching.
    pub cache_entries: usize,
    /// Socket write timeout per response line; combined with the
    /// bounded response buffer this bounds how long a stalled reader
    /// can hold server resources. `None` disables the timeout.
    pub write_timeout_ms: Option<u64>,
    /// Capacity of each connection's response buffer (lines). A
    /// client that stops reading fills it; once senders have waited
    /// out the write timeout the connection is poisoned and dropped
    /// rather than wedging a worker.
    pub response_buffer: usize,
    /// Watchdog bound on a single job's in-flight wall-clock; a job
    /// executing longer has its cancel token flipped (the engines
    /// poll it and return `unknown`/`cancelled`). `None` disables
    /// the watchdog. This is a backstop for jobs submitted without a
    /// budget — budgeted jobs are bounded by their own deadline.
    pub hung_job_ms: Option<u64>,
    /// Worker threads for parallel possible-extensions discovery
    /// inside each job's prefix construction (`0` = auto-detect from
    /// available parallelism, `None` = serial). The prefix is
    /// bit-identical for every setting, so this knob never changes
    /// verdicts, witnesses or cached artifacts — only wall-clock
    /// time. Note this multiplies with [`ServerConfig::workers`]:
    /// `workers` jobs may each spawn this many discovery threads.
    pub unfold_threads: Option<usize>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 4,
            default_engine: Engine::Race,
            default_timeout_ms: None,
            max_queue: Some(1024),
            client_quota: None,
            cache_entries: 64,
            write_timeout_ms: Some(10_000),
            response_buffer: 1024,
            hung_job_ms: None,
            unfold_threads: None,
        }
    }
}

impl ServerConfig {
    fn write_timeout(&self) -> Option<Duration> {
        self.write_timeout_ms
            .filter(|&ms| ms > 0)
            .map(Duration::from_millis)
    }
}

/// Aggregated service counters, snapshot by the `stats` op.
#[derive(Debug, Clone, Default)]
struct Stats {
    jobs_received: u64,
    jobs_completed: u64,
    jobs_errored: u64,
    jobs_rejected: u64,
    in_flight: u64,
    max_queue_depth: u64,
    holds: u64,
    violated: u64,
    unknown: u64,
    /// Jobs answered by the lint LP proof alone — no engine ran.
    lint_proved: u64,
    /// `synthesize` jobs admitted to the queue.
    synthesize_received: u64,
    /// `synthesize` jobs that ended conflict-free (clean or resolved).
    synthesize_resolved: u64,
    /// `synthesize` jobs that surrendered, exhausted their budget, or
    /// hit a pipeline error (the `resolve_failed` response code).
    synthesize_failed: u64,
    /// Cumulative guided candidates emitted across all `synthesize`
    /// jobs (the resolver's conflict-core generator).
    synthesize_candidates_generated: u64,
    /// Cumulative guided host pairs discarded by the structural
    /// concurrency relation across all `synthesize` jobs.
    synthesize_candidates_pruned: u64,
    /// Race outcomes keyed like [`RACER_NAMES`].
    race_wins: [u64; 4],
    /// Races some *other* engine won while this one was retired.
    race_cancelled: [u64; 4],
    race_inconclusive: u64,
    latency_total_ms: f64,
    latency_max_ms: f64,
    /// `check` requests shed by the global `max_queue` bound.
    shed_queue_full: u64,
    /// `check` requests shed by the per-client quota.
    shed_over_quota: u64,
    /// Worker threads that died to a panic (each also restarts).
    worker_panics: u64,
    /// Replacement workers spawned by the supervisor.
    worker_restarts: u64,
    /// In-flight jobs cancelled by the hung-job watchdog.
    hung_jobs_cancelled: u64,
    /// Connections poisoned because their reader stalled past the
    /// write timeout with a full response buffer.
    slow_client_disconnects: u64,
    /// Response lines that could not be delivered (poisoned or
    /// closed connection). The job still *produced* its terminal
    /// response; only delivery failed.
    responses_dropped: u64,
    /// Socket-option failures (`set_read_timeout` /
    /// `set_write_timeout`) surfaced instead of silently ignored.
    socket_config_errors: u64,
}

/// Engine-name order of the per-racer stats arrays.
const RACER_NAMES: [&str; 4] = ["unfolding-ilp", "explicit", "symbolic", "cegar"];

/// Locks a mutex, recovering the guard if a previous holder panicked.
///
/// Every critical section in this module only moves queue entries or
/// bumps counters — none runs engine code — so state is consistent
/// even when a panic (e.g. an injected failpoint) poisons the lock,
/// and recovery is sound. Without this, one worker panic would make
/// every other thread treat the shared state as lost.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Why admission shed a job instead of queueing it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Shed {
    /// The global queue bound was reached.
    QueueFull(usize),
    /// The submitting client reached its per-client quota.
    OverQuota(usize),
}

/// The wire request a queued job executes. Both kinds flow through
/// the same admission path, fair queue, worker pool, watchdog and
/// supervisor — `synthesize` is not a side door around any of the
/// overload or fault-tolerance machinery.
enum JobRequest {
    /// Decide one property (`check`).
    Check(CheckRequest),
    /// Run the full synthesis pipeline (`synthesize`).
    Synthesize(SynthesizeRequest),
}

impl JobRequest {
    fn id(&self) -> &str {
        match self {
            JobRequest::Check(r) => &r.id,
            JobRequest::Synthesize(r) => &r.id,
        }
    }

    fn stg_g(&self) -> &str {
        match self {
            JobRequest::Check(r) => &r.stg_g,
            JobRequest::Synthesize(r) => &r.stg_g,
        }
    }
}

/// One queued job. The STG was already parsed (and structurally
/// linted) at admission, so workers never re-parse.
struct Job {
    request: JobRequest,
    stg: Stg,
    cancel: CancelToken,
    enqueued: Instant,
    client: u64,
    reply: ReplySender,
}

/// The process-wide job queue: one FIFO sub-queue per client
/// connection, dequeued round-robin so every client with pending work
/// gets an equal share of worker dequeues regardless of how deeply
/// any single client pipelines.
#[derive(Default)]
struct FairQueue {
    /// Pending jobs per client id.
    per_client: HashMap<u64, VecDeque<Job>>,
    /// Round-robin rotation over clients with pending jobs.
    rotation: VecDeque<u64>,
    /// Total queued jobs across all clients.
    len: usize,
}

impl FairQueue {
    fn len(&self) -> usize {
        self.len
    }

    fn client_depth(&self, client: u64) -> usize {
        self.per_client.get(&client).map_or(0, VecDeque::len)
    }

    /// Admits `job` unless a bound is hit; on success returns the new
    /// total depth, on shed returns the job back for the rejection
    /// response.
    fn try_push(
        &mut self,
        job: Job,
        max_total: Option<usize>,
        quota: Option<usize>,
    ) -> Result<usize, Box<(Job, Shed)>> {
        if let Some(max) = max_total {
            if self.len >= max {
                return Err(Box::new((job, Shed::QueueFull(max))));
            }
        }
        if let Some(quota) = quota {
            if self.client_depth(job.client) >= quota {
                return Err(Box::new((job, Shed::OverQuota(quota))));
            }
        }
        let client = job.client;
        let slot = self.per_client.entry(client).or_default();
        if slot.is_empty() {
            self.rotation.push_back(client);
        }
        slot.push_back(job);
        self.len += 1;
        Ok(self.len)
    }

    /// Dequeues the next job fairly: the client at the head of the
    /// rotation yields one job and rotates to the back.
    fn pop(&mut self) -> Option<Job> {
        let client = self.rotation.pop_front()?;
        let slot = self.per_client.get_mut(&client)?;
        let job = slot.pop_front()?;
        if slot.is_empty() {
            self.per_client.remove(&client);
        } else {
            self.rotation.push_back(client);
        }
        self.len -= 1;
        Some(job)
    }
}

/// Per-connection state shared by the reader, writer and every job
/// reply path of one connection.
struct ConnShared {
    /// A clone of the connection's stream, used only to force a
    /// close when the connection is poisoned.
    stream: TcpStream,
    /// Set when the connection is declared dead (stalled reader or
    /// write failure); all further sends fail fast.
    poisoned: AtomicBool,
}

impl ConnShared {
    /// Marks the connection dead and shuts the socket so the reader
    /// and writer threads unblock promptly. Returns whether this call
    /// performed the transition (for one-shot accounting).
    fn poison(&self) -> bool {
        let first = !self.poisoned.swap(true, Ordering::SeqCst);
        if first {
            let _ = self.stream.shutdown(Shutdown::Both);
        }
        first
    }

    fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::SeqCst)
    }
}

/// How a reply delivery attempt ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SendOutcome {
    /// Queued into the connection's response buffer.
    Sent,
    /// Undeliverable: the connection was already dead.
    Dropped,
    /// Undeliverable, and *this* send made the call: the buffer
    /// stayed full past the sender's patience, so the connection was
    /// poisoned now (count a slow-client disconnect).
    PoisonedNow,
}

/// A bounded, poison-aware handle for queueing response lines onto a
/// connection's writer thread. Cloned into every job, so workers and
/// the reader thread share one buffer and one failure policy.
#[derive(Clone)]
struct ReplySender {
    tx: SyncSender<String>,
    conn: Arc<ConnShared>,
    /// How long a sender tolerates a full buffer before declaring
    /// the client stalled; mirrors the socket write timeout.
    patience: Duration,
}

impl ReplySender {
    /// Tries to queue `line`, waiting out `patience` on a full buffer
    /// and poisoning the connection if the client never drains it.
    /// This bounds how long one stalled reader can block a worker.
    fn send(&self, line: String) -> SendOutcome {
        let mut line = line;
        let deadline = Instant::now() + self.patience;
        loop {
            if self.conn.is_poisoned() {
                return SendOutcome::Dropped;
            }
            match self.tx.try_send(line) {
                Ok(()) => return SendOutcome::Sent,
                Err(TrySendError::Disconnected(_)) => return SendOutcome::Dropped,
                Err(TrySendError::Full(l)) => {
                    if Instant::now() >= deadline {
                        return if self.conn.poison() {
                            SendOutcome::PoisonedNow
                        } else {
                            SendOutcome::Dropped
                        };
                    }
                    line = l;
                    thread::sleep(Duration::from_millis(2));
                }
            }
        }
    }
}

/// The job a worker is currently executing, registered so the
/// supervisor can fail it on a worker panic and the watchdog can
/// cancel it when it runs too long.
struct InFlight {
    job_id: String,
    reply: ReplySender,
    cancel: CancelToken,
    started: Instant,
    /// Whether the watchdog already cancelled this job (one-shot).
    hung_flagged: bool,
}

struct Shared {
    config: ServerConfig,
    shutdown: AtomicBool,
    queue: Mutex<FairQueue>,
    available: Condvar,
    stats: Mutex<Stats>,
    /// Cancellation tokens of all live (queued or executing) jobs,
    /// flipped together on shutdown so the drain is prompt.
    live_tokens: Mutex<Vec<CancelToken>>,
    /// Verification artifacts keyed by canonical STG hash, shared
    /// across jobs, workers and engines.
    cache: ArtifactCache,
    /// Currently-executing job per worker id, for supervision.
    in_flight_jobs: Mutex<HashMap<usize, InFlight>>,
    /// Every worker thread ever spawned (including supervisor
    /// replacements); drained and joined at shutdown.
    worker_handles: Mutex<Vec<JoinHandle<()>>>,
    next_worker_id: AtomicUsize,
    next_client_id: AtomicU64,
}

impl Shared {
    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }

    fn trigger_shutdown(&self) {
        // The flag flips under the queue lock so it is sequenced
        // against admission: a reader that saw it unset inside its
        // own critical section has already pushed its job, and the
        // workers (which exit only on flag-set *and* queue-empty,
        // re-checked under the same lock) are guaranteed to drain
        // that job. Without the lock a job could slip into the queue
        // after the last worker exited and hang its client forever.
        {
            let _queue = lock(&self.queue);
            self.shutdown.store(true, Ordering::Relaxed);
        }
        for token in lock(&self.live_tokens).iter() {
            token.cancel();
        }
        self.available.notify_all();
    }

    /// Sizes the `retry_after_ms` hint on a load-shed response: the
    /// expected time for the pool to make room, from the observed
    /// mean job latency and the current backlog, clamped to a sane
    /// band so a cold server still suggests *something*.
    fn retry_after_hint_ms(&self, queue_depth: usize) -> u64 {
        let (mean_ms, completed) = {
            let stats = lock(&self.stats);
            let mean = if stats.jobs_completed > 0 {
                stats.latency_total_ms / stats.jobs_completed as f64
            } else {
                0.0
            };
            (mean, stats.jobs_completed)
        };
        let mean_ms = if completed > 0 {
            mean_ms.max(1.0)
        } else {
            10.0
        };
        let workers = self.config.workers.max(1) as f64;
        let estimate = mean_ms * (queue_depth as f64 + 1.0) / workers;
        (estimate.ceil() as u64).clamp(10, 5_000)
    }

    /// Count of worker threads that are still running.
    fn live_workers(&self) -> usize {
        lock(&self.worker_handles)
            .iter()
            .filter(|h| !h.is_finished())
            .count()
    }

    fn stats_response(&self) -> String {
        let queue_depth = lock(&self.queue).len();
        let live_workers = self.live_workers();
        let stats = lock(&self.stats).clone();
        let mean = if stats.jobs_completed > 0 {
            stats.latency_total_ms / stats.jobs_completed as f64
        } else {
            0.0
        };
        let per_racer = |values: [u64; 4]| {
            Value::Obj(
                RACER_NAMES
                    .iter()
                    .zip(values)
                    .map(|(name, v)| ((*name).to_owned(), Value::from(v)))
                    .collect(),
            )
        };
        let opt_bound = |bound: Option<usize>| match bound {
            None => Value::Null,
            Some(n) => Value::from(n),
        };
        Value::Obj(vec![
            ("status".to_owned(), Value::from("ok")),
            (
                "stats".to_owned(),
                Value::Obj(vec![
                    ("workers".to_owned(), Value::from(self.config.workers)),
                    (
                        "default_engine".to_owned(),
                        Value::from(self.config.default_engine.name()),
                    ),
                    ("queue_depth".to_owned(), Value::from(queue_depth)),
                    (
                        "max_queue_depth".to_owned(),
                        Value::from(stats.max_queue_depth),
                    ),
                    ("in_flight".to_owned(), Value::from(stats.in_flight)),
                    ("jobs_received".to_owned(), Value::from(stats.jobs_received)),
                    (
                        "jobs_completed".to_owned(),
                        Value::from(stats.jobs_completed),
                    ),
                    ("jobs_errored".to_owned(), Value::from(stats.jobs_errored)),
                    ("jobs_rejected".to_owned(), Value::from(stats.jobs_rejected)),
                    (
                        "verdicts".to_owned(),
                        Value::Obj(vec![
                            ("holds".to_owned(), Value::from(stats.holds)),
                            ("violated".to_owned(), Value::from(stats.violated)),
                            ("unknown".to_owned(), Value::from(stats.unknown)),
                        ]),
                    ),
                    ("lint_proved".to_owned(), Value::from(stats.lint_proved)),
                    (
                        "synthesize".to_owned(),
                        Value::Obj(vec![
                            (
                                "received".to_owned(),
                                Value::from(stats.synthesize_received),
                            ),
                            (
                                "resolved".to_owned(),
                                Value::from(stats.synthesize_resolved),
                            ),
                            ("failed".to_owned(), Value::from(stats.synthesize_failed)),
                            (
                                "candidates_generated".to_owned(),
                                Value::from(stats.synthesize_candidates_generated),
                            ),
                            (
                                "candidates_pruned".to_owned(),
                                Value::from(stats.synthesize_candidates_pruned),
                            ),
                        ]),
                    ),
                    (
                        "race".to_owned(),
                        Value::Obj(vec![
                            ("wins".to_owned(), per_racer(stats.race_wins)),
                            ("cancelled".to_owned(), per_racer(stats.race_cancelled)),
                            (
                                "inconclusive".to_owned(),
                                Value::from(stats.race_inconclusive),
                            ),
                        ]),
                    ),
                    (
                        "latency_ms".to_owned(),
                        Value::Obj(vec![
                            ("mean".to_owned(), Value::from(mean)),
                            ("max".to_owned(), Value::from(stats.latency_max_ms)),
                            ("total".to_owned(), Value::from(stats.latency_total_ms)),
                        ]),
                    ),
                    (
                        "overload".to_owned(),
                        Value::Obj(vec![
                            ("max_queue".to_owned(), opt_bound(self.config.max_queue)),
                            (
                                "client_quota".to_owned(),
                                opt_bound(self.config.client_quota),
                            ),
                            ("queue_full".to_owned(), Value::from(stats.shed_queue_full)),
                            ("over_quota".to_owned(), Value::from(stats.shed_over_quota)),
                            (
                                "slow_client_disconnects".to_owned(),
                                Value::from(stats.slow_client_disconnects),
                            ),
                            (
                                "responses_dropped".to_owned(),
                                Value::from(stats.responses_dropped),
                            ),
                        ]),
                    ),
                    (
                        "supervisor".to_owned(),
                        Value::Obj(vec![
                            ("live_workers".to_owned(), Value::from(live_workers)),
                            ("worker_panics".to_owned(), Value::from(stats.worker_panics)),
                            (
                                "worker_restarts".to_owned(),
                                Value::from(stats.worker_restarts),
                            ),
                            (
                                "hung_jobs_cancelled".to_owned(),
                                Value::from(stats.hung_jobs_cancelled),
                            ),
                        ]),
                    ),
                    (
                        "socket_config_errors".to_owned(),
                        Value::from(stats.socket_config_errors),
                    ),
                    ("cache".to_owned(), {
                        let cache = self.cache.stats();
                        Value::Obj(vec![
                            ("hits".to_owned(), Value::from(cache.hits)),
                            ("misses".to_owned(), Value::from(cache.misses)),
                            ("evictions".to_owned(), Value::from(cache.evictions)),
                            ("entries".to_owned(), Value::from(cache.entries)),
                            ("capacity".to_owned(), Value::from(cache.capacity)),
                        ])
                    }),
                ]),
            ),
        ])
        .render()
    }
}

/// A running service. Dropping the handle does *not* stop the server;
/// call [`ServerHandle::shutdown`].
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
    supervisor_thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound listen address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests graceful shutdown without waiting: stop accepting,
    /// cancel live jobs, let workers drain.
    pub fn trigger_shutdown(&self) {
        self.shared.trigger_shutdown();
    }

    /// Whether shutdown has been requested (by this handle, a client
    /// `shutdown` op, or a signal).
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutting_down()
    }

    /// Triggers shutdown and joins every service thread, returning
    /// once all in-flight jobs have produced responses.
    pub fn shutdown(mut self) {
        self.shared.trigger_shutdown();
        self.join_threads();
    }

    /// Blocks until the server shuts down by another path (client
    /// `shutdown` op or signal-triggered [`Self::trigger_shutdown`]).
    pub fn join(mut self) {
        self.join_threads();
    }

    fn join_threads(&mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        // Workers may be *replaced* while we drain (a panicking
        // worker's guard spawns its successor before the thread
        // dies), so keep draining the handle list until it stays
        // empty. A replacement is always pushed before its
        // predecessor terminates, so joining the predecessor
        // guarantees the successor is visible on the next pass.
        loop {
            let handles: Vec<JoinHandle<()>> =
                lock(&self.shared.worker_handles).drain(..).collect();
            if handles.is_empty() {
                break;
            }
            for h in handles {
                let _ = h.join();
            }
        }
        if let Some(t) = self.supervisor_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        // A dropped handle of an already-stopping server still joins,
        // so tests cannot leak threads; an active server is left
        // running (detached) as documented.
        if self.shared.shutting_down() {
            self.join_threads();
        }
    }
}

/// Binds the listener and starts the accept loop plus the supervised
/// worker pool.
///
/// # Errors
///
/// Propagates the `bind` failure; everything after binding runs on
/// background threads.
pub fn spawn(config: ServerConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let shared = Arc::new(Shared {
        shutdown: AtomicBool::new(false),
        queue: Mutex::new(FairQueue::default()),
        available: Condvar::new(),
        stats: Mutex::new(Stats::default()),
        live_tokens: Mutex::new(Vec::new()),
        cache: ArtifactCache::new(config.cache_entries),
        in_flight_jobs: Mutex::new(HashMap::new()),
        worker_handles: Mutex::new(Vec::new()),
        next_worker_id: AtomicUsize::new(0),
        next_client_id: AtomicU64::new(0),
        config: config.clone(),
    });
    for _ in 0..config.workers.max(1) {
        spawn_worker(&shared);
    }
    let supervisor_shared = Arc::clone(&shared);
    let supervisor_thread = thread::Builder::new()
        .name("stgd-supervisor".to_owned())
        .spawn(move || supervisor_loop(&supervisor_shared))
        .ok();
    let accept_shared = Arc::clone(&shared);
    let accept_thread = thread::spawn(move || accept_loop(&listener, &accept_shared));
    Ok(ServerHandle {
        addr,
        shared,
        accept_thread: Some(accept_thread),
        supervisor_thread,
    })
}

/// Spawns one worker thread and registers its handle for joining.
/// Used both at startup and by the supervisor to replace a panicked
/// worker.
fn spawn_worker(shared: &Arc<Shared>) {
    let worker_id = shared.next_worker_id.fetch_add(1, Ordering::Relaxed);
    let worker_shared = Arc::clone(shared);
    let spawned = thread::Builder::new()
        .name(format!("stgd-worker-{worker_id}"))
        .spawn(move || {
            // The guard runs on *any* exit; it acts only when the
            // thread is panicking (see `WorkerGuard::drop`).
            let _guard = WorkerGuard {
                shared: Arc::clone(&worker_shared),
                worker_id,
            };
            worker_loop(&worker_shared, worker_id);
        });
    match spawned {
        Ok(handle) => lock(&shared.worker_handles).push(handle),
        Err(e) => eprintln!("stgd: failed to spawn worker thread: {e}"),
    }
}

/// Detects a panicking worker from its drop during unwind: fails the
/// in-flight job with the stable `worker_crashed` code, counts the
/// panic, and spawns a replacement so the pool never shrinks.
struct WorkerGuard {
    shared: Arc<Shared>,
    worker_id: usize,
}

impl Drop for WorkerGuard {
    fn drop(&mut self) {
        if !thread::panicking() {
            return;
        }
        let crashed = lock(&self.shared.in_flight_jobs).remove(&self.worker_id);
        {
            let mut stats = lock(&self.shared.stats);
            stats.worker_panics += 1;
            if crashed.is_some() {
                stats.in_flight = stats.in_flight.saturating_sub(1);
                stats.jobs_errored += 1;
            }
        }
        if let Some(in_flight) = crashed {
            lock(&self.shared.live_tokens).retain(|t| !t.same_token(&in_flight.cancel));
            let line = encode_error_response_with_code(
                Some(&in_flight.job_id),
                "worker_crashed",
                "the worker deciding this job crashed; the job is safe to resubmit",
            );
            if in_flight.reply.send(line) != SendOutcome::Sent {
                lock(&self.shared.stats).responses_dropped += 1;
            }
        }
        // Replace the dead worker so capacity recovers — including
        // during a draining shutdown while jobs are still queued
        // (otherwise a panic storm at shutdown could strand queued
        // jobs without any worker to answer them).
        let respawn = !self.shared.shutting_down() || lock(&self.shared.queue).len() > 0;
        if respawn {
            lock(&self.shared.stats).worker_restarts += 1;
            spawn_worker(&self.shared);
        }
        self.shared.available.notify_all();
    }
}

/// The supervisor's watchdog: periodically cancels jobs that have
/// been in flight longer than [`ServerConfig::hung_job_ms`]. Worker
/// *panics* are handled synchronously by [`WorkerGuard`]; this thread
/// covers the wedged-but-alive case.
fn supervisor_loop(shared: &Arc<Shared>) {
    while !shared.shutting_down() {
        thread::sleep(Duration::from_millis(20));
        let Some(hung_ms) = shared.config.hung_job_ms else {
            continue;
        };
        let bound = Duration::from_millis(hung_ms);
        let mut cancelled = 0u64;
        for in_flight in lock(&shared.in_flight_jobs).values_mut() {
            if !in_flight.hung_flagged && in_flight.started.elapsed() >= bound {
                in_flight.hung_flagged = true;
                in_flight.cancel.cancel();
                cancelled += 1;
            }
        }
        if cancelled > 0 {
            lock(&shared.stats).hung_jobs_cancelled += cancelled;
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    let mut connections: Vec<JoinHandle<()>> = Vec::new();
    while !shared.shutting_down() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let shared = Arc::clone(shared);
                connections.push(thread::spawn(move || {
                    handle_connection(stream, &shared);
                }));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(10));
            }
            Err(_) => thread::sleep(Duration::from_millis(10)),
        }
        connections.retain(|c| !c.is_finished());
    }
    // Drain the accept backlog: a client that completed its TCP
    // handshake just before the flag flipped may have requests in
    // flight already. Dropping the listener on it would RST the
    // connection and silently discard those requests; accepting it
    // lets the connection reader answer each one with the
    // shutdown-time admission error before closing cleanly.
    while let Ok((stream, _peer)) = listener.accept() {
        let shared = Arc::clone(shared);
        connections.push(thread::spawn(move || {
            handle_connection(stream, &shared);
        }));
    }
    for c in connections {
        let _ = c.join();
    }
}

/// Reads request lines until EOF, shutdown or a poisoned connection;
/// responses are funnelled through a dedicated writer thread behind a
/// bounded buffer, so worker replies and inline replies (stats,
/// protocol errors) never interleave mid-line and a stalled reader
/// cannot absorb unbounded memory.
fn handle_connection(stream: TcpStream, shared: &Arc<Shared>) {
    let client_id = shared.next_client_id.fetch_add(1, Ordering::Relaxed);
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let Ok(poison_half) = stream.try_clone() else {
        return;
    };
    let conn = Arc::new(ConnShared {
        stream: poison_half,
        poisoned: AtomicBool::new(false),
    });
    // Short read timeout so the reader notices shutdown while idle.
    // A failure here would leave the reader blind to shutdown, so it
    // is surfaced (logged + counted) instead of discarded.
    if let Err(e) = stream.set_read_timeout(Some(Duration::from_millis(100))) {
        eprintln!("stgd: set_read_timeout failed on client connection: {e}");
        lock(&shared.stats).socket_config_errors += 1;
    }
    let write_timeout = shared.config.write_timeout();
    if let Err(e) = write_half.set_write_timeout(write_timeout) {
        eprintln!("stgd: set_write_timeout failed on client connection: {e}");
        lock(&shared.stats).socket_config_errors += 1;
    }
    let (reply_tx, reply_rx) = mpsc::sync_channel::<String>(shared.config.response_buffer.max(1));
    let reply = ReplySender {
        tx: reply_tx,
        conn: Arc::clone(&conn),
        patience: write_timeout.unwrap_or(Duration::from_secs(30)),
    };
    let writer_conn = Arc::clone(&conn);
    let writer_shared = Arc::clone(shared);
    let writer =
        thread::spawn(move || writer_loop(write_half, &reply_rx, &writer_conn, &writer_shared));
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        if conn.is_poisoned() {
            break;
        }
        match reader.read_line(&mut line) {
            Ok(0) => break, // EOF: client is done.
            Ok(_) => {
                let trimmed = line.trim();
                if !trimmed.is_empty() {
                    handle_request_line(trimmed, shared, &reply, client_id);
                }
                line.clear();
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                // A timeout may land mid-line; `read_line` has already
                // appended the bytes it got, so keep `line` and let the
                // next iteration append the rest of the request.
                if shared.shutting_down() {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    drop(reply);
    let _ = writer.join();
}

fn writer_loop(
    stream: TcpStream,
    replies: &mpsc::Receiver<String>,
    conn: &Arc<ConnShared>,
    shared: &Arc<Shared>,
) {
    let mut out = io::BufWriter::new(stream);
    while let Ok(response) = replies.recv() {
        // Chaos injection: `writer/send` stalls the socket (the
        // response buffer then exercises the slow-client path);
        // `writer/short_write` splits the line into two flushes with
        // a delay between them, which must never corrupt framing.
        failpoints::fire("writer/send");
        let bytes = response.as_bytes();
        let result = if failpoints::is_triggered("writer/short_write") && bytes.len() > 1 {
            let (head, tail) = bytes.split_at(bytes.len() / 2);
            out.write_all(head)
                .and_then(|()| out.flush())
                .and_then(|()| {
                    thread::sleep(Duration::from_millis(5));
                    out.write_all(tail)
                })
                .and_then(|()| out.write_all(b"\n"))
                .and_then(|()| out.flush())
        } else {
            out.write_all(bytes)
                .and_then(|()| out.write_all(b"\n"))
                .and_then(|()| out.flush())
        };
        if let Err(e) = result {
            // A write timeout means the client stalled; anything else
            // is a plain hangup. Either way the connection is dead:
            // poison it so the reader and job senders fail fast
            // instead of queueing more undeliverable responses.
            let stalled = matches!(
                e.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            );
            if conn.poison() && stalled {
                lock(&shared.stats).slow_client_disconnects += 1;
            }
            // Undeliverable responses already buffered (or racing in
            // past the poison flag) are counted, never silently
            // discarded. Sends that *observe* the poison flag count
            // themselves on the worker side; this drain picks up the
            // rest and runs until every sender (reader, queued and
            // in-flight jobs) has hung up, so the accounting is
            // exactly-once either way.
            let mut dropped = 0u64;
            while replies.recv().is_ok() {
                dropped += 1;
            }
            if dropped > 0 {
                lock(&shared.stats).responses_dropped += dropped;
            }
            break;
        }
    }
}

fn handle_request_line(line: &str, shared: &Arc<Shared>, reply: &ReplySender, client_id: u64) {
    match decode_request(line) {
        Err(e) => {
            lock(&shared.stats).jobs_errored += 1;
            reply.send(encode_error_response(e.id.as_deref(), &e.message));
        }
        Ok(Request::Stats) => {
            reply.send(shared.stats_response());
        }
        Ok(Request::Shutdown) => {
            reply.send(
                Value::Obj(vec![
                    ("status".to_owned(), Value::from("ok")),
                    ("shutting_down".to_owned(), Value::from(true)),
                ])
                .render(),
            );
            shared.trigger_shutdown();
        }
        Ok(Request::Check(request)) => {
            admit_job(JobRequest::Check(request), shared, reply, client_id);
        }
        Ok(Request::Synthesize(request)) => {
            admit_job(JobRequest::Synthesize(request), shared, reply, client_id);
        }
    }
}

/// Admits one `check` or `synthesize` job: shutdown gate, admission
/// lint, cancel-token registration, and the bounded fair-queue push.
/// Both job kinds share this path, so quotas, load shedding and the
/// graceful-shutdown drain treat them identically.
fn admit_job(request: JobRequest, shared: &Arc<Shared>, reply: &ReplySender, client_id: u64) {
    if shared.shutting_down() {
        reply.send(encode_error_response(
            Some(request.id()),
            "server is shutting down",
        ));
        return;
    }
    // Admission lint: parse failures and structurally broken
    // nets are rejected here on the reader thread — cheap
    // graph checks only (no LP) — so garbage never consumes a
    // queue slot or a worker. The job carries the parsed STG
    // so workers never re-parse.
    let options = lint::LintOptions {
        lp: false,
        ..Default::default()
    };
    let outcome = lint::lint_bytes(request.stg_g().as_bytes(), &options);
    let stg = match outcome.stg {
        Some(stg) if !outcome.report.has_errors() => stg,
        _ => {
            lock(&shared.stats).jobs_rejected += 1;
            reply.send(encode_lint_rejected(Some(request.id()), &outcome.report));
            return;
        }
    };
    let cancel = CancelToken::new();
    lock(&shared.live_tokens).push(cancel.clone());
    // trigger_shutdown() may have swept live_tokens between
    // the shutting_down() check above and the push; re-check
    // so a job slipping through that window is still cancelled
    // and cannot stall the drain.
    if shared.shutting_down() {
        cancel.cancel();
    }
    let is_synthesize = matches!(request, JobRequest::Synthesize(_));
    let job = Job {
        request,
        stg,
        cancel,
        enqueued: Instant::now(),
        client: client_id,
        reply: reply.clone(),
    };
    // Admission and both bound checks happen under one queue
    // lock, so the bounds are exact even with many connection
    // readers racing. The shutdown re-check lives inside the
    // same critical section: `trigger_shutdown` flips the
    // flag under this lock, so a job admitted here is
    // guaranteed to be visible to the draining workers — it
    // can never land in the queue after the last worker
    // already decided the drain was complete.
    let admitted = {
        let mut queue = lock(&shared.queue);
        if shared.shutting_down() {
            Err((job, None, 0))
        } else {
            let depth = queue.len();
            queue
                .try_push(job, shared.config.max_queue, shared.config.client_quota)
                .map_err(|boxed| {
                    let (job, shed) = *boxed;
                    (job, Some(shed), depth)
                })
        }
    };
    match admitted {
        Ok(depth) => {
            let mut stats = lock(&shared.stats);
            stats.jobs_received += 1;
            if is_synthesize {
                stats.synthesize_received += 1;
            }
            stats.max_queue_depth = stats.max_queue_depth.max(depth as u64);
            drop(stats);
            shared.available.notify_one();
        }
        Err((job, None, _)) => {
            // Refused by the in-lock shutdown re-check.
            lock(&shared.live_tokens).retain(|t| !t.same_token(&job.cancel));
            job.reply.send(encode_error_response(
                Some(job.request.id()),
                "server is shutting down",
            ));
        }
        Err((job, Some(shed), depth)) => {
            lock(&shared.live_tokens).retain(|t| !t.same_token(&job.cancel));
            {
                let mut stats = lock(&shared.stats);
                stats.jobs_rejected += 1;
                match shed {
                    Shed::QueueFull(_) => stats.shed_queue_full += 1,
                    Shed::OverQuota(_) => stats.shed_over_quota += 1,
                }
            }
            let retry_after_ms = shared.retry_after_hint_ms(depth);
            let (code, message) = match shed {
                Shed::QueueFull(max) => (
                    "queue_full",
                    format!("job queue is full ({max} queued jobs); retry later"),
                ),
                Shed::OverQuota(quota) => (
                    "over_quota",
                    format!(
                        "client already has {quota} queued jobs \
                         (per-client quota); retry later"
                    ),
                ),
            };
            job.reply.send(encode_overload_response(
                Some(job.request.id()),
                code,
                &message,
                retry_after_ms,
            ));
        }
    }
}

fn worker_loop(shared: &Arc<Shared>, worker_id: usize) {
    loop {
        let job = {
            let mut queue = lock(&shared.queue);
            loop {
                if let Some(job) = queue.pop() {
                    break Some(job);
                }
                if shared.shutting_down() {
                    break None; // Queue drained, shutdown requested.
                }
                let (q, _) = shared
                    .available
                    .wait_timeout(queue, Duration::from_millis(50))
                    .unwrap_or_else(PoisonError::into_inner);
                queue = q;
            }
        };
        let Some(job) = job else { return };
        lock(&shared.stats).in_flight += 1;
        // Register the job for supervision *before* any fallible
        // work: if this thread dies mid-job, the worker guard fails
        // the job with `worker_crashed` instead of losing it.
        lock(&shared.in_flight_jobs).insert(
            worker_id,
            InFlight {
                job_id: job.request.id().to_owned(),
                reply: job.reply.clone(),
                cancel: job.cancel.clone(),
                started: Instant::now(),
                hung_flagged: false,
            },
        );
        // Chaos injection: `worker/run` panics (exercising the
        // supervisor) or sleeps (injecting queue latency) as a job
        // starts executing.
        failpoints::fire("worker/run");
        process_job(&job, shared);
        lock(&shared.in_flight_jobs).remove(&worker_id);
        lock(&shared.stats).in_flight -= 1;
        // Completed jobs no longer need their shutdown hook.
        lock(&shared.live_tokens).retain(|t| !t.same_token(&job.cancel));
    }
}

fn process_job(job: &Job, shared: &Arc<Shared>) {
    let response = match &job.request {
        JobRequest::Check(request) => process_check(request, job, shared),
        JobRequest::Synthesize(request) => process_synthesize(request, job, shared),
    };
    match job.reply.send(response) {
        SendOutcome::Sent => {}
        SendOutcome::Dropped => {
            lock(&shared.stats).responses_dropped += 1;
        }
        SendOutcome::PoisonedNow => {
            let mut stats = lock(&shared.stats);
            stats.responses_dropped += 1;
            stats.slow_client_disconnects += 1;
        }
    }
}

/// Runs one `check` job and renders its response line.
fn process_check(request: &CheckRequest, job: &Job, shared: &Arc<Shared>) -> String {
    let stg = &job.stg;
    let mut budget = request.budget.to_budget();
    if budget.deadline.is_none() {
        budget.deadline = shared.config.default_timeout_ms.map(Duration::from_millis);
    }
    budget.cancel = Some(job.cancel.clone());
    let engine = request.engine.unwrap_or(shared.config.default_engine);
    let property = request.property;
    // Content-addressed reuse: a repeat of a cached net skips prefix
    // construction, state-graph exploration and BDD re-encoding.
    let (artifacts, _cache_hit) = shared.cache.get_or_insert(stg);
    // The wire `CheckRequest` above describes the job; this one runs
    // it (`csc_core`'s builder shares the name). Prelint is on: a
    // family whose property the LP relaxation proves answers without
    // any engine touching the state space, and the proof is cached in
    // the shared artifacts for repeat nets.
    // The structure pass rides along too: its class-gated fast paths
    // can answer without any engine, and the revision-8 responses
    // surface the detected net class to clients.
    let mut check = csc_core::CheckRequest::new(stg, property)
        .engine(engine)
        .budget(budget)
        .artifacts(&artifacts)
        .prelint(true)
        .structure(true);
    if let Some(threads) = shared.config.unfold_threads {
        check = check.unfold_threads(threads);
    }
    let result = check.run();
    match result {
        Ok(run) => {
            let latency_ms = job.enqueued.elapsed().as_secs_f64() * 1e3;
            {
                let mut stats = lock(&shared.stats);
                stats.jobs_completed += 1;
                stats.latency_total_ms += latency_ms;
                stats.latency_max_ms = stats.latency_max_ms.max(latency_ms);
                match run.verdict.holds() {
                    Some(true) => stats.holds += 1,
                    Some(false) => stats.violated += 1,
                    None => stats.unknown += 1,
                }
                let lint_proved = run.report.lint.is_some_and(|l| l.proved);
                if lint_proved {
                    stats.lint_proved += 1;
                }
                // Race attribution only applies when the racers
                // actually started; a lint-proved job never spawned
                // them.
                if run.report.engine == "race" && !lint_proved {
                    match run.report.winner {
                        Some(winner) => {
                            for (i, name) in RACER_NAMES.iter().enumerate() {
                                if *name == winner {
                                    stats.race_wins[i] += 1;
                                } else {
                                    stats.race_cancelled[i] += 1;
                                }
                            }
                        }
                        None => stats.race_inconclusive += 1,
                    }
                }
            }
            encode_check_response(&request.id, stg, &run)
        }
        Err(e) => {
            lock(&shared.stats).jobs_errored += 1;
            encode_error_response(Some(&request.id), &e.to_string())
        }
    }
}

/// Runs one `synthesize` job and renders its response line.
///
/// The job reuses the same cached artifact set as `check` — a net
/// already checked (or synthesized) before seeds the pipeline's
/// initial check *and* the resolver's initial score. Failure is
/// terminal: surrender, budget exhaustion (including a watchdog
/// cancellation mid-resolution) and pipeline errors all answer the
/// stable `resolve_failed` code, which clients must not retry.
fn process_synthesize(request: &SynthesizeRequest, job: &Job, shared: &Arc<Shared>) -> String {
    let stg = &job.stg;
    let mut budget = request.budget.to_budget();
    if budget.deadline.is_none() {
        budget.deadline = shared.config.default_timeout_ms.map(Duration::from_millis);
    }
    budget.cancel = Some(job.cancel.clone());
    let mut options = resolve::SynthesisOptions {
        engine: request.engine.unwrap_or(shared.config.default_engine),
        ..Default::default()
    };
    options.resolver.budget = budget;
    if let Some(max) = request.max_signals {
        options.resolver.max_signals = max;
    }
    let (artifacts, _cache_hit) = shared.cache.get_or_insert(stg);
    match resolve::synthesize(stg, &options, Some(artifacts)) {
        Ok(run) => {
            let latency_ms = job.enqueued.elapsed().as_secs_f64() * 1e3;
            {
                let mut stats = lock(&shared.stats);
                stats.jobs_completed += 1;
                stats.latency_total_ms += latency_ms;
                stats.latency_max_ms = stats.latency_max_ms.max(latency_ms);
                if run.pipeline.outcome.is_conflict_free() {
                    stats.synthesize_resolved += 1;
                } else {
                    stats.synthesize_failed += 1;
                }
                if let Some(r) = &run.resolve_report {
                    stats.synthesize_candidates_generated += r.candidates_generated as u64;
                    stats.synthesize_candidates_pruned += r.candidates_pruned as u64;
                }
            }
            encode_synthesize_response(&request.id, &run)
        }
        Err(e) => {
            {
                let mut stats = lock(&shared.stats);
                stats.jobs_errored += 1;
                stats.synthesize_failed += 1;
            }
            encode_error_response_with_code(Some(&request.id), "resolve_failed", &e.to_string())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use crate::protocol::BudgetSpec;
    use csc_core::Property;
    use stg::gen::vme::vme_read;

    fn local_server(workers: usize) -> ServerHandle {
        spawn(ServerConfig {
            workers,
            ..Default::default()
        })
        .expect("bind ephemeral port")
    }

    fn test_job(client: u64, id: &str) -> Job {
        let stg = vme_read();
        let (tx, rx) = mpsc::sync_channel(4);
        // Keep the receiver alive for the test's duration by leaking
        // it; unit-test jobs are never actually answered.
        std::mem::forget(rx);
        let conn = Arc::new(ConnShared {
            stream: TcpStream::connect(
                TcpListener::bind("127.0.0.1:0")
                    .expect("bind")
                    .local_addr()
                    .expect("addr"),
            )
            .expect("connect"),
            poisoned: AtomicBool::new(false),
        });
        Job {
            request: JobRequest::Check(CheckRequest {
                id: id.to_owned(),
                stg_g: String::new(),
                property: Property::Csc,
                engine: None,
                budget: BudgetSpec::default(),
            }),
            stg,
            cancel: CancelToken::new(),
            enqueued: Instant::now(),
            client,
            reply: ReplySender {
                tx,
                conn,
                patience: Duration::from_millis(10),
            },
        }
    }

    #[test]
    fn fair_queue_round_robins_across_clients() {
        let mut queue = FairQueue::default();
        // Client 1 pipelines three jobs before client 2's single job
        // arrives; the dequeue order must interleave, not FIFO.
        for (client, id) in [(1, "a1"), (1, "a2"), (1, "a3"), (2, "b1")] {
            queue
                .try_push(test_job(client, id), None, None)
                .map_err(|_| "unexpected shed")
                .expect("admitted");
        }
        assert_eq!(queue.len(), 4);
        assert_eq!(queue.client_depth(1), 3);
        let order: Vec<String> = std::iter::from_fn(|| queue.pop())
            .map(|j| j.request.id().to_owned())
            .collect();
        assert_eq!(order, ["a1", "b1", "a2", "a3"]);
        assert_eq!(queue.len(), 0);
    }

    #[test]
    fn fair_queue_enforces_global_bound_and_quota() {
        let mut queue = FairQueue::default();
        queue
            .try_push(test_job(1, "a1"), Some(2), Some(1))
            .map_err(|_| "unexpected shed")
            .expect("admitted");
        // Client 1 is at its quota of 1.
        let Err(shed) = queue.try_push(test_job(1, "a2"), Some(2), Some(1)) else {
            panic!("quota must shed");
        };
        assert_eq!(shed.1, Shed::OverQuota(1));
        // Another client still fits under the global bound of 2.
        queue
            .try_push(test_job(2, "b1"), Some(2), Some(1))
            .map_err(|_| "unexpected shed")
            .expect("admitted");
        // Now the global bound sheds regardless of client.
        let Err(shed) = queue.try_push(test_job(3, "c1"), Some(2), Some(1)) else {
            panic!("bound must shed");
        };
        assert_eq!(shed.1, Shed::QueueFull(2));
    }

    #[test]
    fn serves_a_check_and_stats_round_trip() {
        let server = local_server(2);
        let mut client = Client::connect(server.addr()).expect("connect");
        let g = stg::to_g_format(&vme_read(), "vme");
        let response = client
            .check("j1", &g, Property::Csc, None, BudgetSpec::default())
            .expect("check");
        assert_eq!(response.verdict.as_deref(), Some("violated"));
        assert_eq!(response.engine.as_deref(), Some("race"));
        assert!(response.winner.is_some());
        let stats = client.stats().expect("stats");
        assert_eq!(
            stats
                .get("stats")
                .and_then(|s| s.get("jobs_completed"))
                .and_then(Value::as_u64),
            Some(1)
        );
        // Revision 4: the overload and supervisor blocks are present.
        let sup = stats
            .get("stats")
            .and_then(|s| s.get("supervisor"))
            .expect("supervisor stats");
        assert_eq!(sup.get("worker_panics").and_then(Value::as_u64), Some(0));
        assert_eq!(sup.get("live_workers").and_then(Value::as_u64), Some(2));
        let overload = stats
            .get("stats")
            .and_then(|s| s.get("overload"))
            .expect("overload stats");
        assert_eq!(overload.get("queue_full").and_then(Value::as_u64), Some(0));
        assert_eq!(
            overload.get("max_queue").and_then(Value::as_u64),
            Some(1024),
            "max_queue defaults to a bounded value"
        );
        server.shutdown();
    }

    #[test]
    fn serves_a_synthesize_end_to_end() {
        let server = local_server(2);
        let mut client = Client::connect(server.addr()).expect("connect");
        let g = stg::to_g_format(&vme_read(), "vme");
        let response = client
            .synthesize("s1", &g, None, None, BudgetSpec::default())
            .expect("synthesize");
        assert_eq!(response.status, "ok");
        assert_eq!(response.outcome.as_deref(), Some("resolved"));
        assert_eq!(response.inserted.len(), 1, "one state signal for vme");
        // The resolved net round-trips through .g and is genuinely
        // conflict-free when re-checked over the same connection.
        let resolved_g = response.resolved_g.as_deref().expect("resolved .g");
        let recheck = client
            .check(
                "s1-recheck",
                resolved_g,
                Property::Csc,
                None,
                BudgetSpec::default(),
            )
            .expect("recheck");
        assert_eq!(recheck.verdict.as_deref(), Some("holds"));
        assert!(response.equations().is_some(), "equations present");
        assert!(response.resolve_stats().is_some(), "resolve block present");
        // The pipeline hands the resolver's artifacts to the re-check
        // stage, so it rebuilt nothing.
        assert_eq!(
            response
                .raw
                .get("recheck_prefix_events_built")
                .and_then(Value::as_u64),
            Some(0),
            "incremental re-verification: warm re-check"
        );
        let stats = client.stats().expect("stats");
        let synth = stats
            .get("stats")
            .and_then(|s| s.get("synthesize"))
            .expect("synthesize stats");
        assert_eq!(synth.get("received").and_then(Value::as_u64), Some(1));
        assert_eq!(synth.get("resolved").and_then(Value::as_u64), Some(1));
        assert_eq!(synth.get("failed").and_then(Value::as_u64), Some(0));
        server.shutdown();
    }

    #[test]
    fn failed_synthesis_answers_the_permanent_resolve_failed_code() {
        let server = local_server(1);
        let mut client = Client::connect(server.addr()).expect("connect");
        let g = stg::to_g_format(&vme_read(), "vme");
        // max_signals 0 forbids any insertion, so the conflicted net
        // cannot be resolved: a deterministic, permanent failure.
        let response = client
            .synthesize("s-fail", &g, Some(0), None, BudgetSpec::default())
            .expect("synthesize");
        assert_eq!(response.status, "error");
        assert_eq!(response.code.as_deref(), Some("resolve_failed"));
        assert!(
            !response.is_retryable(),
            "resolve_failed must never be retried"
        );
        let stats = client.stats().expect("stats");
        let synth = stats
            .get("stats")
            .and_then(|s| s.get("synthesize"))
            .expect("synthesize stats");
        assert_eq!(synth.get("failed").and_then(Value::as_u64), Some(1));
        server.shutdown();
    }

    #[test]
    fn request_lines_spanning_read_timeouts_are_not_lost() {
        let server = local_server(1);
        let mut stream = TcpStream::connect(server.addr()).expect("connect");
        // Deliver one request in two writes separated by well over the
        // 100ms reader timeout: the partial head must survive the
        // timed-out read_line instead of being cleared.
        let request = "{\"op\":\"stats\"}\n";
        let (head, tail) = request.split_at(7);
        stream.write_all(head.as_bytes()).expect("write head");
        stream.flush().expect("flush head");
        thread::sleep(Duration::from_millis(300));
        stream.write_all(tail.as_bytes()).expect("write tail");
        stream.flush().expect("flush tail");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("read reply");
        let v = crate::json::parse(reply.trim()).expect("valid NDJSON reply");
        assert_eq!(v.get("status").and_then(Value::as_str), Some("ok"));
        server.shutdown();
    }

    #[test]
    fn malformed_lines_get_error_responses_not_disconnects() {
        let server = local_server(1);
        let mut client = Client::connect(server.addr()).expect("connect");
        let v = client
            .round_trip("{\"op\":\"check\",\"id\":\"bad\"}")
            .expect("reply");
        assert_eq!(v.get("status").and_then(Value::as_str), Some("error"));
        assert_eq!(v.get("id").and_then(Value::as_str), Some("bad"));
        // The connection survives and serves the next request.
        let stats = client.stats().expect("stats after error");
        assert_eq!(stats.get("status").and_then(Value::as_str), Some("ok"));
        server.shutdown();
    }

    #[test]
    fn repeat_jobs_hit_the_artifact_cache() {
        let server = local_server(2);
        let mut client = Client::connect(server.addr()).expect("connect");
        let g = stg::to_g_format(&vme_read(), "vme");
        for (i, property) in ["usc", "csc"].iter().enumerate() {
            let property = crate::protocol::property_from_str(property).unwrap();
            let response = client
                .check(&format!("j{i}"), &g, property, None, BudgetSpec::default())
                .expect("check");
            assert_eq!(response.verdict.as_deref(), Some("violated"));
        }
        let stats = client.stats().expect("stats");
        let cache = stats
            .get("stats")
            .and_then(|s| s.get("cache"))
            .expect("cache stats present");
        assert_eq!(cache.get("misses").and_then(Value::as_u64), Some(1));
        assert_eq!(cache.get("hits").and_then(Value::as_u64), Some(1));
        assert_eq!(cache.get("entries").and_then(Value::as_u64), Some(1));
        assert_eq!(cache.get("evictions").and_then(Value::as_u64), Some(0));
        server.shutdown();
    }

    #[test]
    fn warm_checks_report_zero_prefix_events_built() {
        let server = spawn(ServerConfig {
            default_engine: Engine::UnfoldingIlp,
            ..Default::default()
        })
        .expect("bind");
        let mut client = Client::connect(server.addr()).expect("connect");
        let g = stg::to_g_format(&vme_read(), "vme");
        let built = |response: &crate::client::CheckResponse| {
            response
                .raw
                .get("report")
                .and_then(|r| r.get("prefix_events_built"))
                .and_then(Value::as_u64)
        };
        let cold = client
            .check("cold", &g, Property::Csc, None, BudgetSpec::default())
            .expect("cold check");
        assert!(built(&cold).is_some_and(|n| n > 0), "{:?}", cold.raw);
        let warm = client
            .check("warm", &g, Property::Csc, None, BudgetSpec::default())
            .expect("warm check");
        assert_eq!(built(&warm), Some(0), "{:?}", warm.raw);
        assert_eq!(cold.verdict, warm.verdict);
        server.shutdown();
    }

    #[test]
    fn full_queue_rejects_checks_with_a_stable_code_and_retry_hint() {
        // No workers ever pop: zero capacity means every check is
        // rejected at admission.
        let server = spawn(ServerConfig {
            workers: 1,
            max_queue: Some(0),
            ..Default::default()
        })
        .expect("bind");
        let mut client = Client::connect(server.addr()).expect("connect");
        let g = stg::to_g_format(&vme_read(), "vme");
        let response = client
            .check("jq", &g, Property::Csc, None, BudgetSpec::default())
            .expect("transport ok");
        assert_eq!(response.status, "error");
        assert_eq!(response.code.as_deref(), Some("queue_full"));
        assert_eq!(response.id.as_deref(), Some("jq"));
        // Revision 4: shed responses carry a backoff hint.
        assert!(
            response.retry_after_ms.is_some_and(|ms| ms >= 10),
            "{:?}",
            response.raw
        );
        // The connection survives; stats counted the rejection.
        let stats = client.stats().expect("stats");
        assert_eq!(
            stats
                .get("stats")
                .and_then(|s| s.get("jobs_rejected"))
                .and_then(Value::as_u64),
            Some(1)
        );
        assert_eq!(
            stats
                .get("stats")
                .and_then(|s| s.get("overload"))
                .and_then(|o| o.get("queue_full"))
                .and_then(Value::as_u64),
            Some(1)
        );
        assert_eq!(
            stats
                .get("stats")
                .and_then(|s| s.get("jobs_received"))
                .and_then(Value::as_u64),
            Some(0),
            "rejected jobs are not received jobs"
        );
        server.shutdown();
    }

    #[test]
    fn per_client_quota_sheds_with_the_over_quota_code() {
        // One worker, no global bound pressure, but a quota of zero:
        // every check from any single client is over quota.
        let server = spawn(ServerConfig {
            workers: 1,
            client_quota: Some(0),
            ..Default::default()
        })
        .expect("bind");
        let mut client = Client::connect(server.addr()).expect("connect");
        let g = stg::to_g_format(&vme_read(), "vme");
        let response = client
            .check("jq", &g, Property::Csc, None, BudgetSpec::default())
            .expect("transport ok");
        assert_eq!(response.status, "error");
        assert_eq!(response.code.as_deref(), Some("over_quota"));
        assert!(response.retry_after_ms.is_some());
        let stats = client.stats().expect("stats");
        assert_eq!(
            stats
                .get("stats")
                .and_then(|s| s.get("overload"))
                .and_then(|o| o.get("over_quota"))
                .and_then(Value::as_u64),
            Some(1)
        );
        server.shutdown();
    }

    #[test]
    fn ill_formed_inputs_are_rejected_at_admission() {
        // Zero queue capacity would reject anything that reaches the
        // queue, so a lint_rejected response here proves the bad net
        // was turned away *before* admission — no queue slot, no
        // worker.
        let server = spawn(ServerConfig {
            workers: 1,
            max_queue: Some(0),
            ..Default::default()
        })
        .expect("bind");
        let mut client = Client::connect(server.addr()).expect("connect");
        let bad = ".model m\n.outputs a\n.graph\nb+ a+\n.marking { }\n.end\n";
        let response = client
            .check("jl", bad, Property::Csc, None, BudgetSpec::default())
            .expect("transport ok");
        assert_eq!(response.status, "error");
        assert_eq!(response.code.as_deref(), Some("lint_rejected"));
        assert_eq!(response.id.as_deref(), Some("jl"));
        let diags = response.diagnostics().expect("diagnostics array");
        let Value::Arr(items) = diags else {
            panic!("diagnostics is not an array: {diags:?}")
        };
        let first = items.first().expect("at least one diagnostic");
        assert_eq!(first.get("code").and_then(Value::as_str), Some("L003"));
        assert_eq!(first.get("severity").and_then(Value::as_str), Some("error"));
        assert_eq!(first.get("line").and_then(Value::as_u64), Some(4));
        assert_eq!(first.get("col").and_then(Value::as_u64), Some(1));
        // The rejection consumed neither a queue slot nor a worker.
        let stats = client.stats().expect("stats");
        let counter = |key: &str| {
            stats
                .get("stats")
                .and_then(|s| s.get(key))
                .and_then(Value::as_u64)
        };
        assert_eq!(counter("jobs_received"), Some(0));
        assert_eq!(counter("jobs_rejected"), Some(1));
        server.shutdown();
    }

    #[test]
    fn lint_proved_families_short_circuit_without_engines() {
        let server = spawn(ServerConfig {
            default_engine: Engine::UnfoldingIlp,
            ..Default::default()
        })
        .expect("bind");
        let mut client = Client::connect(server.addr()).expect("connect");
        let g = stg::to_g_format(&stg::gen::counterflow::counterflow_sym(2, 3), "cf");
        let response = client
            .check("jp", &g, Property::Usc, None, BudgetSpec::default())
            .expect("check");
        assert_eq!(
            response.verdict.as_deref(),
            Some("holds"),
            "{:?}",
            response.raw
        );
        assert_eq!(response.winner.as_deref(), Some("lint"));
        let report = response.raw.get("report").expect("report");
        assert_eq!(
            report.get("prefix_events_built").and_then(Value::as_u64),
            Some(0),
            "no engine may touch the state space"
        );
        let lint = response.lint_summary().expect("lint summary present");
        assert_eq!(lint.get("proved").and_then(Value::as_bool), Some(true));
        assert_eq!(lint.get("usc_proved").and_then(Value::as_bool), Some(true));
        assert_eq!(lint.get("errors").and_then(Value::as_u64), Some(0));
        server.shutdown();
    }

    #[test]
    fn unfold_threads_config_parallelises_discovery_without_changing_verdicts() {
        let server = spawn(ServerConfig {
            default_engine: Engine::UnfoldingIlp,
            unfold_threads: Some(2),
            ..Default::default()
        })
        .expect("bind");
        let mut client = Client::connect(server.addr()).expect("connect");
        let g = stg::to_g_format(&stg::gen::vme::vme_read(), "vme");
        let response = client
            .check("ju", &g, Property::Csc, None, BudgetSpec::default())
            .expect("check");
        assert_eq!(
            response.verdict.as_deref(),
            Some("violated"),
            "{:?}",
            response.raw
        );
        let unfold = response.unfold_stats().expect("unfold block present");
        assert_eq!(unfold.get("workers").and_then(Value::as_u64), Some(2));
        assert!(unfold
            .get("pe_commits")
            .and_then(Value::as_u64)
            .is_some_and(|n| n > 0));
        server.shutdown();
    }

    #[test]
    fn client_shutdown_op_stops_the_server() {
        let server = local_server(1);
        let mut client = Client::connect(server.addr()).expect("connect");
        let ack = client.shutdown().expect("ack");
        assert_eq!(
            ack.get("shutting_down").and_then(Value::as_bool),
            Some(true)
        );
        server.join(); // Returns because the client op triggered shutdown.
    }

    #[test]
    fn retry_after_hint_scales_with_backlog_and_stays_clamped() {
        let shared = Shared {
            config: ServerConfig {
                workers: 2,
                ..Default::default()
            },
            shutdown: AtomicBool::new(false),
            queue: Mutex::new(FairQueue::default()),
            available: Condvar::new(),
            stats: Mutex::new(Stats::default()),
            live_tokens: Mutex::new(Vec::new()),
            cache: ArtifactCache::new(0),
            in_flight_jobs: Mutex::new(HashMap::new()),
            worker_handles: Mutex::new(Vec::new()),
            next_worker_id: AtomicUsize::new(0),
            next_client_id: AtomicU64::new(0),
        };
        // Cold server: the default hint.
        assert_eq!(shared.retry_after_hint_ms(0), 10);
        // Warm server with 20ms mean latency: hint grows with depth.
        {
            let mut stats = lock(&shared.stats);
            stats.jobs_completed = 10;
            stats.latency_total_ms = 200.0;
        }
        let shallow = shared.retry_after_hint_ms(1);
        let deep = shared.retry_after_hint_ms(100);
        assert!(shallow < deep, "{shallow} < {deep}");
        // Pathological latencies never hint beyond the clamp.
        {
            let mut stats = lock(&shared.stats);
            stats.latency_total_ms = 1e9;
        }
        assert_eq!(shared.retry_after_hint_ms(1000), 5_000);
    }
}
