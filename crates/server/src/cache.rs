//! A content-addressed LRU cache of verification artifact sets.
//!
//! The server keys each [`Artifacts`] set by the STG's canonical
//! content hash ([`stg::Stg::canonical_hash`]), so two jobs that ship
//! the same net — even with reordered declarations, different
//! whitespace or renamed implicit places — share one prefix, one
//! state graph and one symbolic encoding. A warm `check` on a cached
//! net performs *zero* unfolding work (its report shows
//! `prefix_events_built = 0`).
//!
//! Eviction is least-recently-used over a fixed entry capacity. The
//! cache stores `Arc`s, so an evicted set stays alive until the jobs
//! currently using it finish; eviction only stops *future* jobs from
//! reusing it.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use csc_core::Artifacts;
use stg::Stg;

/// Monotonic counters and occupancy of one [`ArtifactCache`],
/// reported by the server's `stats` op.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups that found a resident artifact set.
    pub hits: u64,
    /// Lookups that had to create a fresh set.
    pub misses: u64,
    /// Resident sets displaced to admit a new one.
    pub evictions: u64,
    /// Currently resident sets.
    pub entries: usize,
    /// Maximum resident sets (`0` disables caching).
    pub capacity: usize,
}

struct Entry {
    artifacts: Arc<Artifacts>,
    /// Logical timestamp of the last lookup that returned this entry.
    last_used: u64,
}

struct Inner {
    map: HashMap<u128, Entry>,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// A thread-safe LRU cache of [`Artifacts`] keyed by canonical STG
/// hash.
pub struct ArtifactCache {
    capacity: usize,
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for ArtifactCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("ArtifactCache")
            .field("capacity", &self.capacity)
            .field("entries", &stats.entries)
            .finish_non_exhaustive()
    }
}

impl ArtifactCache {
    /// Creates a cache holding up to `capacity` artifact sets. A
    /// capacity of `0` disables retention: every lookup is a miss and
    /// returns a fresh, uncached set.
    pub fn new(capacity: usize) -> Self {
        ArtifactCache {
            capacity,
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                tick: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
        }
    }

    /// Looks up the artifact set of `stg` by canonical hash, creating
    /// (and caching) it on a miss. Returns the set and whether the
    /// lookup was a hit.
    pub fn get_or_insert(&self, stg: &Stg) -> (Arc<Artifacts>, bool) {
        let key = stg.canonical_hash().as_u128();
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(entry) = inner.map.get_mut(&key) {
            entry.last_used = tick;
            let artifacts = Arc::clone(&entry.artifacts);
            inner.hits += 1;
            return (artifacts, true);
        }
        inner.misses += 1;
        let artifacts = Arc::new(Artifacts::of(stg));
        if self.capacity == 0 {
            return (artifacts, false);
        }
        if inner.map.len() >= self.capacity {
            // Evict the least-recently-used resident set.
            if let Some(&victim) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k)
            {
                inner.map.remove(&victim);
                inner.evictions += 1;
            }
        }
        inner.map.insert(
            key,
            Entry {
                artifacts: Arc::clone(&artifacts),
                last_used: tick,
            },
        );
        (artifacts, false)
    }

    /// A consistent snapshot of the cache counters.
    pub fn stats(&self) -> CacheStats {
        let inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            entries: inner.map.len(),
            capacity: self.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stg::gen::counterflow::counterflow_sym;
    use stg::gen::vme::{vme_read, vme_read_csc_resolved};

    #[test]
    fn hits_share_one_artifact_set() {
        let cache = ArtifactCache::new(4);
        let (a, hit_a) = cache.get_or_insert(&vme_read());
        assert!(!hit_a);
        // Same net through a `.g` round-trip: same canonical hash.
        let text = stg::to_g_format(&vme_read(), "other_name");
        let reparsed = stg::parse(&text).unwrap();
        let (b, hit_b) = cache.get_or_insert(&reparsed);
        assert!(hit_b);
        assert!(Arc::ptr_eq(&a, &b));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn lru_eviction_is_counted_and_displaces_the_oldest() {
        let cache = ArtifactCache::new(2);
        let (first, _) = cache.get_or_insert(&vme_read());
        cache.get_or_insert(&vme_read_csc_resolved());
        // Touch the first so the second becomes LRU.
        cache.get_or_insert(&vme_read());
        // A third distinct net evicts the resolved VME.
        cache.get_or_insert(&counterflow_sym(2, 2));
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.entries, 2);
        // The touched entry survived …
        let (again, hit) = cache.get_or_insert(&vme_read());
        assert!(hit);
        assert!(Arc::ptr_eq(&first, &again));
        // … and the LRU one was displaced: re-inserting is a miss.
        let (_, hit) = cache.get_or_insert(&vme_read_csc_resolved());
        assert!(!hit, "evicted entry must be rebuilt");
    }

    #[test]
    fn zero_capacity_disables_retention() {
        let cache = ArtifactCache::new(0);
        let (a, hit) = cache.get_or_insert(&vme_read());
        assert!(!hit);
        let (b, hit) = cache.get_or_insert(&vme_read());
        assert!(!hit, "nothing is retained at capacity 0");
        assert!(!Arc::ptr_eq(&a, &b));
        let stats = cache.stats();
        assert_eq!((stats.misses, stats.entries), (2, 0));
    }
}
