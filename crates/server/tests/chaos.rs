//! Chaos suite: drives `stgd` through injected faults — worker
//! panics, queue latency, socket stalls, short writes — and asserts
//! the service invariants hold anyway:
//!
//! - no deadlocks (every test finishes; shutdown drains cleanly);
//! - every submitted job gets exactly one terminal response (a
//!   verdict, `queue_full`/`over_quota`, `worker_crashed`, or the
//!   shutdown-time admission error);
//! - NDJSON framing survives short writes and stalls;
//! - a backoff-enabled client completes a 100-job workload against a
//!   4-slot queue and a periodically crashing worker.
//!
//! Compiled only under `--features failpoints` (the injection
//! registry is a no-op otherwise). The registry is process-global,
//! so every test serialises itself through [`guard`].
#![cfg(feature = "failpoints")]

use std::collections::HashMap;
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Duration;

use csc_core::{Engine, Property};
use server::failpoints::{self, Action};
use server::json::Value;
use server::protocol::{BudgetSpec, CheckRequest};
use server::{spawn, Client, RetryPolicy, ServerConfig};
use stg::gen::vme::vme_read;

/// Serialises tests around the process-global failpoint registry.
fn guard() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

fn vme_g() -> String {
    stg::to_g_format(&vme_read(), "vme")
}

fn check_request(id: &str, g: &str) -> CheckRequest {
    CheckRequest {
        id: id.to_owned(),
        stg_g: g.to_owned(),
        property: Property::Csc,
        engine: Some(Engine::UnfoldingIlp),
        budget: BudgetSpec::default(),
    }
}

/// Reads `n` responses and asserts each pending id gets exactly one
/// terminal response; returns the responses keyed by id.
fn collect_terminal(client: &mut Client, ids: &[String]) -> HashMap<String, server::CheckResponse> {
    let mut seen: HashMap<String, server::CheckResponse> = HashMap::new();
    for _ in 0..ids.len() {
        let response = client.read_response().expect("a terminal response line");
        let id = response.id.clone().expect("responses echo the id");
        assert!(
            seen.insert(id.clone(), response).is_none(),
            "job {id} received two terminal responses"
        );
    }
    for id in ids {
        assert!(seen.contains_key(id), "job {id} never got a response");
    }
    seen
}

#[test]
fn crashed_workers_fail_the_job_and_the_pool_recovers() {
    let _guard = guard();
    failpoints::reset();
    let server = spawn(ServerConfig {
        workers: 2,
        ..Default::default()
    })
    .expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");
    let g = vme_g();

    // The first two jobs to reach a worker kill it.
    failpoints::configure("worker/run", Action::panic().times(2));
    let ids: Vec<String> = (0..4).map(|i| format!("c{i}")).collect();
    for id in &ids {
        client.submit(&check_request(id, &g)).expect("submit");
    }
    let responses = collect_terminal(&mut client, &ids);
    let crashed = responses
        .values()
        .filter(|r| r.code.as_deref() == Some("worker_crashed"))
        .count();
    let decided = responses
        .values()
        .filter(|r| r.verdict.as_deref() == Some("violated"))
        .count();
    assert_eq!(crashed, 2, "each injected panic fails exactly one job");
    assert_eq!(decided, 2, "the remaining jobs still get verdicts");

    // The pool was restocked: an un-faulted job succeeds, and the
    // supervisor counters tell the story.
    failpoints::remove("worker/run");
    let after = client
        .check("after", &g, Property::Csc, None, BudgetSpec::default())
        .expect("post-crash check");
    assert_eq!(after.verdict.as_deref(), Some("violated"));
    let stats = client.stats().expect("stats");
    let sup = stats
        .get("stats")
        .and_then(|s| s.get("supervisor"))
        .expect("supervisor block");
    assert_eq!(sup.get("worker_panics").and_then(Value::as_u64), Some(2));
    assert_eq!(sup.get("worker_restarts").and_then(Value::as_u64), Some(2));
    assert_eq!(sup.get("live_workers").and_then(Value::as_u64), Some(2));
    server.shutdown();
    failpoints::reset();
}

#[test]
fn queue_latency_faults_lose_no_jobs_and_shutdown_drains() {
    let _guard = guard();
    failpoints::reset();
    let server = spawn(ServerConfig {
        workers: 2,
        ..Default::default()
    })
    .expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");
    let g = vme_g();

    // Every job stalls 30ms before executing, so shutdown fires with
    // most of the batch still queued or in flight.
    failpoints::configure("worker/run", Action::sleep_ms(30));
    let ids: Vec<String> = (0..10).map(|i| format!("l{i}")).collect();
    for id in &ids {
        client.submit(&check_request(id, &g)).expect("submit");
    }
    server.trigger_shutdown();
    // The drain guarantee: every job still answers — a verdict for
    // jobs that ran, `cancelled` for swept ones, or the
    // shutdown-time admission error for jobs the reader had not yet
    // admitted. Exactly one line each, all parseable.
    let responses = collect_terminal(&mut client, &ids);
    for (id, response) in &responses {
        let terminal = response.verdict.as_deref() == Some("violated")
            || response.reason.as_deref() == Some("cancelled")
            || response.status == "error";
        assert!(terminal, "job {id}: odd terminal state {:?}", response.raw);
    }
    server.join();
    failpoints::reset();
}

#[test]
fn socket_stalls_and_short_writes_never_corrupt_framing() {
    let _guard = guard();
    failpoints::reset();
    let server = spawn(ServerConfig {
        workers: 2,
        ..Default::default()
    })
    .expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");
    let g = vme_g();

    // Every response line is delayed and then written in two short
    // writes with a flush between them; the client must still see
    // whole lines.
    failpoints::configure("writer/send", Action::sleep_ms(10));
    failpoints::configure("writer/short_write", Action::trigger());
    let ids: Vec<String> = (0..6).map(|i| format!("f{i}")).collect();
    for id in &ids {
        client.submit(&check_request(id, &g)).expect("submit");
    }
    let responses = collect_terminal(&mut client, &ids);
    for response in responses.values() {
        assert_eq!(response.verdict.as_deref(), Some("violated"));
    }
    assert!(
        failpoints::hits("writer/send") >= 6,
        "the stall site was exercised"
    );
    failpoints::reset();
    server.shutdown();
}

#[test]
fn stalled_readers_are_poisoned_without_wedging_workers() {
    let _guard = guard();
    failpoints::reset();
    let server = spawn(ServerConfig {
        workers: 1,
        write_timeout_ms: Some(100),
        response_buffer: 1,
        ..Default::default()
    })
    .expect("bind");
    let mut victim = Client::connect(server.addr()).expect("connect");
    let g = vme_g();

    // The victim's writer thread sleeps 600ms per response while the
    // worker keeps finishing jobs into a 1-line buffer: the worker's
    // sends outlast the 100ms write patience, so the connection is
    // poisoned instead of blocking the worker.
    failpoints::configure("writer/send", Action::sleep_ms(600));
    for i in 0..4 {
        victim
            .submit(&check_request(&format!("s{i}"), &g))
            .expect("submit");
    }
    // Wait for the poisoning to happen (jobs are ms-scale; patience
    // is 100ms), then disarm so other connections are unaffected.
    std::thread::sleep(Duration::from_millis(400));
    failpoints::remove("writer/send");

    // The worker survived: a fresh client gets served promptly.
    let mut fresh = Client::connect(server.addr()).expect("connect fresh");
    let after = fresh
        .check("after", &g, Property::Csc, None, BudgetSpec::default())
        .expect("check after poisoning");
    assert_eq!(after.verdict.as_deref(), Some("violated"));
    let stats = fresh.stats().expect("stats");
    let overload = stats
        .get("stats")
        .and_then(|s| s.get("overload"))
        .expect("overload block");
    assert_eq!(
        overload
            .get("slow_client_disconnects")
            .and_then(Value::as_u64),
        Some(1),
        "{stats:?}"
    );
    assert!(
        overload
            .get("responses_dropped")
            .and_then(Value::as_u64)
            .is_some_and(|n| n >= 1),
        "{stats:?}"
    );
    server.shutdown();
    failpoints::reset();
}

/// The acceptance workload: 100 jobs from 10 concurrent
/// backoff-enabled clients against a 2-worker pool with a 4-slot
/// queue and a worker that panics every 9th job it starts. Every job
/// must complete with the correct verdict; the shed and crash
/// traffic is absorbed by the retry policy.
#[test]
fn backoff_clients_complete_100_jobs_against_tiny_queue_and_crashing_worker() {
    let _guard = guard();
    failpoints::reset();
    let server = spawn(ServerConfig {
        workers: 2,
        max_queue: Some(4),
        ..Default::default()
    })
    .expect("bind");
    failpoints::configure("worker/run", Action::panic().every(9));
    let g = vme_g();
    let policy = RetryPolicy {
        max_attempts: 25,
        base_delay_ms: 5,
        max_delay_ms: 250,
    };
    let addr = server.addr();
    let workers: Vec<_> = (0..10)
        .map(|t| {
            let g = g.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let mut stats = server::RetryStats::default();
                for j in 0..10 {
                    let (response, attempt_stats) = client
                        .check_with_retry_stats(
                            &format!("w{t}-{j}"),
                            &g,
                            Property::Csc,
                            Some(Engine::UnfoldingIlp),
                            BudgetSpec::default(),
                            &policy,
                        )
                        .expect("job must eventually complete");
                    assert_eq!(
                        response.verdict.as_deref(),
                        Some("violated"),
                        "job w{t}-{j}: {:?}",
                        response.raw
                    );
                    stats.attempts += attempt_stats.attempts;
                    stats.sheds += attempt_stats.sheds;
                    stats.worker_crashes += attempt_stats.worker_crashes;
                    stats.reconnects += attempt_stats.reconnects;
                }
                stats
            })
        })
        .collect();
    let mut total = server::RetryStats::default();
    for w in workers {
        let stats = w.join().expect("client thread");
        total.attempts += stats.attempts;
        total.sheds += stats.sheds;
        total.worker_crashes += stats.worker_crashes;
        total.reconnects += stats.reconnects;
    }
    failpoints::remove("worker/run");
    assert!(
        total.attempts >= 100,
        "100 jobs need at least 100 attempts: {total:?}"
    );
    assert!(
        total.worker_crashes >= 1,
        "the crashing worker must have been observed: {total:?}"
    );

    let mut client = Client::connect(addr).expect("connect for stats");
    let stats = client.stats().expect("stats");
    let section = |name: &str| {
        stats
            .get("stats")
            .and_then(|s| s.get(name))
            .unwrap_or_else(|| panic!("missing stats.{name}: {stats:?}"))
            .clone()
    };
    let sup = section("supervisor");
    let panics = sup
        .get("worker_panics")
        .and_then(Value::as_u64)
        .expect("worker_panics");
    assert!(panics >= 1, "{stats:?}");
    assert_eq!(
        sup.get("worker_restarts").and_then(Value::as_u64),
        Some(panics),
        "every panic during service must restart a worker"
    );
    assert_eq!(
        sup.get("live_workers").and_then(Value::as_u64),
        Some(2),
        "the pool never shrinks"
    );
    // Completed + crashed = the 100 logical jobs plus retried
    // attempts that were admitted; every admitted job terminated.
    let completed = stats
        .get("stats")
        .and_then(|s| s.get("jobs_completed"))
        .and_then(Value::as_u64)
        .expect("jobs_completed");
    assert!(completed >= 100, "{stats:?}");
    server.shutdown();
    failpoints::reset();
}
