//! End-to-end test of the `stgd` *binary*: spawn the daemon, push a
//! 50-job mixed batch through a 4-worker pool, require a verdict (or
//! an addressable error) with a resource report for every job, then
//! shut down cleanly over the wire and check the process exits 0.

use std::collections::HashMap;
use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use csc_core::Property;
use server::json::Value;
use server::protocol::{BudgetSpec, CheckRequest};
use server::Client;

struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    fn spawn(workers: usize) -> Daemon {
        let mut child = Command::new(env!("CARGO_BIN_EXE_stgd"))
            .args(["--addr", "127.0.0.1:0", "--workers", &workers.to_string()])
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn stgd");
        let stdout = child.stdout.take().expect("stdout piped");
        let mut lines = BufReader::new(stdout).lines();
        let banner = lines
            .next()
            .expect("stgd prints its listen address")
            .expect("read banner");
        let addr = banner
            .strip_prefix("listening on ")
            .unwrap_or_else(|| panic!("unexpected banner: {banner}"))
            .to_owned();
        Daemon { child, addr }
    }

    /// Waits for the daemon to exit, killing it if it overstays.
    fn wait(mut self, deadline: Duration) -> Option<i32> {
        let start = Instant::now();
        loop {
            match self.child.try_wait().expect("poll stgd") {
                Some(status) => return status.code(),
                None if start.elapsed() > deadline => {
                    let _ = self.child.kill();
                    let _ = self.child.wait();
                    panic!("stgd did not exit within {deadline:?} after shutdown");
                }
                None => std::thread::sleep(Duration::from_millis(20)),
            }
        }
    }
}

#[test]
fn fifty_job_mixed_batch_on_a_four_worker_pool() {
    let daemon = Daemon::spawn(4);
    let mut client = Client::connect(daemon.addr.as_str()).expect("connect to stgd");

    let vme = stg::to_g_format(&stg::gen::vme::vme_read(), "vme");
    let resolved = stg::to_g_format(&stg::gen::vme::vme_read_csc_resolved(), "vme-csc");
    let counterflow = stg::to_g_format(&stg::gen::counterflow::counterflow_sym(3, 2), "cf");
    // Big enough that no racer concludes within the starved job's
    // deadline (even the fastest engine needs tens of milliseconds).
    let heavy = stg::to_g_format(&stg::gen::counterflow::counterflow_sym(8, 2), "cf8");

    // 50 jobs: rotating conclusive models, plus one malformed input
    // and one budget-starved job mixed in.
    let mut expected: HashMap<String, &str> = HashMap::new();
    for i in 0..50usize {
        let id = format!("job-{i}");
        let (g, verdict): (&str, &str) = match i {
            7 => ("graph? this is not one", "error"),
            23 => (&heavy, "unknown"),
            _ => match i % 3 {
                0 => (&vme, "violated"),
                1 => (&resolved, "holds"),
                _ => (&counterflow, "holds"),
            },
        };
        let budget = if i == 23 {
            BudgetSpec {
                timeout_ms: Some(1),
                ..Default::default()
            }
        } else {
            BudgetSpec::default()
        };
        client
            .submit(&CheckRequest {
                id: id.clone(),
                stg_g: g.to_owned(),
                property: Property::Csc,
                engine: None,
                budget,
            })
            .expect("submit job");
        expected.insert(id, verdict);
    }

    let mut seen = HashMap::new();
    for _ in 0..50 {
        let response = client.read_response().expect("read response");
        let id = response.id.clone().expect("every response is addressed");
        assert!(expected.contains_key(&id), "unexpected id {id}");
        assert!(seen.insert(id, response).is_none(), "duplicate response");
    }
    for (id, want) in &expected {
        let got = &seen[id];
        match *want {
            "error" => {
                assert_eq!(got.status, "error", "{id}");
                // Garbage is turned away at admission with the
                // stable lint code and structured diagnostics.
                assert_eq!(got.code.as_deref(), Some("lint_rejected"), "{id}");
                assert!(got.diagnostics().is_some(), "{id}");
            }
            verdict => {
                assert_eq!(got.status, "ok", "{id}");
                assert_eq!(got.verdict.as_deref(), Some(verdict), "{id}");
                assert!(
                    got.elapsed_ms.is_some(),
                    "{id}: every completed job carries its resource report"
                );
                assert_eq!(got.engine.as_deref(), Some("race"), "{id}");
            }
        }
    }

    let stats = client.stats().expect("stats");
    let stat = |key: &str| {
        stats
            .get("stats")
            .and_then(|s| s.get(key))
            .and_then(Value::as_u64)
    };
    // The malformed job never reaches the queue: admission lint
    // rejects it on the reader thread, so it is neither received nor
    // errored.
    assert_eq!(stat("jobs_received"), Some(49));
    assert_eq!(stat("jobs_completed"), Some(49));
    assert_eq!(stat("jobs_errored"), Some(0));
    assert_eq!(stat("jobs_rejected"), Some(1));
    assert_eq!(stat("queue_depth"), Some(0));
    let race_wins: u64 = ["unfolding-ilp", "explicit", "symbolic"]
        .iter()
        .filter_map(|engine| {
            stats
                .get("stats")
                .and_then(|s| s.get("race"))
                .and_then(|r| r.get("wins"))
                .and_then(|w| w.get(engine))
                .and_then(Value::as_u64)
        })
        .sum();
    let lint_proved = stat("lint_proved").expect("lint_proved counter");
    assert!(
        lint_proved >= 15,
        "every conflict-free counterflow job is answered by the LP proof alone \
         (got {lint_proved})"
    );
    assert_eq!(
        race_wins + lint_proved,
        48,
        "every conclusive job was won by a racer or proved by lint"
    );

    let ack = client.shutdown().expect("shutdown ack");
    assert_eq!(
        ack.get("shutting_down").and_then(Value::as_bool),
        Some(true)
    );
    assert_eq!(
        daemon.wait(Duration::from_secs(30)),
        Some(0),
        "clean exit after draining"
    );
}
