//! Overload suite: drives `stgd`'s admission control and watchdog
//! with real concurrency (no fault injection) and asserts the
//! accounting stays exact — every rejection carries the stable code
//! and a `retry_after_ms` hint, counters add up across racing
//! submitters, a backoff client rides out the contention, and the
//! hung-job watchdog cancels runaways.

use std::time::Duration;

use csc_core::{Engine, Property};
use server::json::Value;
use server::protocol::{BudgetSpec, CheckRequest};
use server::{spawn, Client, RetryPolicy, ServerConfig};
use stg::gen::pipeline::muller_pipeline;
use stg::gen::vme::vme_read;

fn vme_g() -> String {
    stg::to_g_format(&vme_read(), "vme")
}

fn counter(stats: &Value, key: &str) -> u64 {
    stats
        .get("stats")
        .and_then(|s| s.get(key))
        .and_then(Value::as_u64)
        .unwrap_or_else(|| panic!("missing stats.{key}: {stats:?}"))
}

fn overload_counter(stats: &Value, key: &str) -> u64 {
    stats
        .get("stats")
        .and_then(|s| s.get("overload"))
        .and_then(|o| o.get(key))
        .and_then(Value::as_u64)
        .unwrap_or_else(|| panic!("missing stats.overload.{key}: {stats:?}"))
}

/// Six clients pipeline five jobs each into a 1-slot queue with one
/// worker. Whatever the interleaving: every job gets exactly one
/// terminal response, every rejection is a coded `queue_full` with a
/// retry hint, and the counters reconcile exactly with what the
/// clients observed.
#[test]
fn concurrent_submitters_get_exact_queue_full_accounting() {
    let server = spawn(ServerConfig {
        workers: 1,
        max_queue: Some(1),
        ..Default::default()
    })
    .expect("bind");
    let addr = server.addr();
    let g = vme_g();
    let threads: Vec<_> = (0..6)
        .map(|t| {
            let g = g.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for j in 0..5 {
                    client
                        .submit(&CheckRequest {
                            id: format!("t{t}-{j}"),
                            stg_g: g.clone(),
                            property: Property::Csc,
                            engine: Some(Engine::UnfoldingIlp),
                            budget: BudgetSpec::default(),
                        })
                        .expect("submit");
                }
                let (mut ok, mut shed) = (0u64, 0u64);
                for _ in 0..5 {
                    let response = client.read_response().expect("terminal response");
                    match response.code.as_deref() {
                        Some("queue_full") => {
                            assert!(
                                response.retry_after_ms.is_some_and(|ms| ms >= 10),
                                "rejections must hint a backoff: {:?}",
                                response.raw
                            );
                            shed += 1;
                        }
                        None => {
                            assert_eq!(
                                response.verdict.as_deref(),
                                Some("violated"),
                                "{:?}",
                                response.raw
                            );
                            ok += 1;
                        }
                        other => panic!("unexpected terminal code {other:?}"),
                    }
                }
                (ok, shed)
            })
        })
        .collect();
    let (mut ok, mut shed) = (0u64, 0u64);
    for t in threads {
        let (o, s) = t.join().expect("client thread");
        ok += o;
        shed += s;
    }
    assert_eq!(ok + shed, 30, "every job got exactly one response");
    let mut client = Client::connect(addr).expect("connect");
    let stats = client.stats().expect("stats");
    assert_eq!(counter(&stats, "jobs_received"), ok);
    assert_eq!(counter(&stats, "jobs_completed"), ok);
    assert_eq!(counter(&stats, "jobs_rejected"), shed);
    assert_eq!(overload_counter(&stats, "queue_full"), shed);
    assert_eq!(overload_counter(&stats, "over_quota"), 0);
    server.shutdown();
}

/// A backoff-enabled client pointed at a saturated 1-slot queue
/// eventually gets its verdict: the shed responses' hints pace the
/// retries until the burst drains.
#[test]
fn backoff_retrying_client_eventually_succeeds_under_load() {
    let server = spawn(ServerConfig {
        workers: 1,
        max_queue: Some(1),
        ..Default::default()
    })
    .expect("bind");
    let g = vme_g();

    // Saturate: pipeline a burst that overflows the queue.
    let mut burst = Client::connect(server.addr()).expect("connect burst");
    for i in 0..8 {
        burst
            .submit(&CheckRequest {
                id: format!("b{i}"),
                stg_g: g.clone(),
                property: Property::Csc,
                engine: Some(Engine::UnfoldingIlp),
                budget: BudgetSpec::default(),
            })
            .expect("submit");
    }

    // The retry client contends with the burst and must still land.
    let mut patient = Client::connect(server.addr()).expect("connect patient");
    let response = patient
        .check_with_retry(
            "patient",
            &g,
            Property::Csc,
            Some(Engine::UnfoldingIlp),
            BudgetSpec::default(),
            &RetryPolicy {
                max_attempts: 40,
                base_delay_ms: 10,
                max_delay_ms: 200,
            },
        )
        .expect("the retry loop must outlast the burst");
    assert_eq!(response.verdict.as_deref(), Some("violated"));

    // The burst itself: every job answered exactly once.
    let mut burst_ok = 0;
    for _ in 0..8 {
        let r = burst.read_response().expect("burst response");
        if r.status == "ok" {
            burst_ok += 1;
        } else {
            assert_eq!(r.code.as_deref(), Some("queue_full"), "{:?}", r.raw);
        }
    }
    assert!(burst_ok >= 1, "the worker made progress during the burst");
    server.shutdown();
}

/// The watchdog cancels a job that exceeds `hung_job_ms`: the job
/// still gets a terminal response (`unknown`/`cancelled`), the
/// counter ticks, and the worker is free for the next job.
#[test]
fn hung_job_watchdog_cancels_runaways() {
    let server = spawn(ServerConfig {
        workers: 1,
        hung_job_ms: Some(60),
        ..Default::default()
    })
    .expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");
    // A deep pipeline runs far past the 60ms bound (its prelint LP
    // alone is a multi-second exact-arithmetic solve); both the LP
    // and the explicit engine poll the cancel token, so the
    // watchdog's cancellation surfaces as a prompt `cancelled`
    // verdict instead of an uninterruptible grind.
    let runaway = stg::to_g_format(&muller_pipeline(12), "deep");
    let response = client
        .check(
            "runaway",
            &runaway,
            Property::Csc,
            Some(Engine::ExplicitStateGraph),
            BudgetSpec::default(),
        )
        .expect("terminal response");
    assert_eq!(
        response.verdict.as_deref(),
        Some("unknown"),
        "{:?}",
        response.raw
    );
    assert_eq!(
        response.reason.as_deref(),
        Some("cancelled"),
        "{:?}",
        response.raw
    );
    // The worker is free again: a normal job completes promptly.
    let after = client
        .check(
            "after",
            &vme_g(),
            Property::Csc,
            Some(Engine::UnfoldingIlp),
            BudgetSpec::default(),
        )
        .expect("check after cancellation");
    assert_eq!(after.verdict.as_deref(), Some("violated"));
    let stats = client.stats().expect("stats");
    let sup = stats
        .get("stats")
        .and_then(|s| s.get("supervisor"))
        .expect("supervisor block");
    assert_eq!(
        sup.get("hung_jobs_cancelled").and_then(Value::as_u64),
        Some(1),
        "{stats:?}"
    );
    server.shutdown();
}

/// The watchdog also covers `synthesize` jobs: a resolution that
/// exceeds `hung_job_ms` is cancelled mid-candidate through the same
/// cancel token, answers the stable `resolve_failed` code (permanent —
/// the retry layer must not resubmit it), and frees the worker.
#[test]
fn hung_synthesize_watchdog_cancels_runaway_resolution() {
    let server = spawn(ServerConfig {
        workers: 1,
        hung_job_ms: Some(60),
        ..Default::default()
    })
    .expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");
    // A large conflicted duplex net: scoring its insertion candidates
    // explores a state graph per candidate, far past the 60ms bound.
    // The resolver threads the job's cancel token through every
    // exploration, so the watchdog's flip aborts the search promptly.
    let runaway = stg::to_g_format(&stg::gen::duplex::dup_mod(6), "runaway");
    let response = client
        .synthesize("runaway-synth", &runaway, None, None, BudgetSpec::default())
        .expect("terminal response");
    assert_eq!(response.status, "error", "{:?}", response.raw);
    assert_eq!(
        response.code.as_deref(),
        Some("resolve_failed"),
        "{:?}",
        response.raw
    );
    assert!(
        !response.is_retryable(),
        "a watchdog-cancelled synthesis is a permanent failure"
    );
    // The worker is free again: a normal job completes promptly.
    let after = client
        .check(
            "after",
            &vme_g(),
            Property::Csc,
            Some(Engine::UnfoldingIlp),
            BudgetSpec::default(),
        )
        .expect("check after cancellation");
    assert_eq!(after.verdict.as_deref(), Some("violated"));
    let stats = client.stats().expect("stats");
    let sup = stats
        .get("stats")
        .and_then(|s| s.get("supervisor"))
        .expect("supervisor block");
    assert_eq!(
        sup.get("hung_jobs_cancelled").and_then(Value::as_u64),
        Some(1),
        "{stats:?}"
    );
    let synth = stats
        .get("stats")
        .and_then(|s| s.get("synthesize"))
        .expect("synthesize block");
    assert_eq!(synth.get("failed").and_then(Value::as_u64), Some(1));
    server.shutdown();
}

/// Per-client quotas shed the hog's surplus while another client's
/// jobs still get through, and the `over_quota` code/counters are
/// exact.
#[test]
fn quotas_contain_a_hog_without_starving_others() {
    let server = spawn(ServerConfig {
        workers: 1,
        client_quota: Some(1),
        ..Default::default()
    })
    .expect("bind");
    let g = vme_g();
    // The hog pipelines a burst far over its quota of 1 queued job.
    let mut hog = Client::connect(server.addr()).expect("connect hog");
    for i in 0..10 {
        hog.submit(&CheckRequest {
            id: format!("h{i}"),
            stg_g: g.clone(),
            property: Property::Csc,
            engine: Some(Engine::UnfoldingIlp),
            budget: BudgetSpec::default(),
        })
        .expect("submit");
    }
    let (mut hog_ok, mut hog_shed) = (0u64, 0u64);
    for _ in 0..10 {
        let r = hog.read_response().expect("hog response");
        if r.status == "ok" {
            hog_ok += 1;
        } else {
            assert_eq!(r.code.as_deref(), Some("over_quota"), "{:?}", r.raw);
            assert!(r.retry_after_ms.is_some());
            hog_shed += 1;
        }
    }
    assert_eq!(hog_ok + hog_shed, 10);
    assert!(hog_shed >= 1, "the burst must overflow a quota of 1");
    // A polite client (one job at a time) is never shed.
    let mut polite = Client::connect(server.addr()).expect("connect polite");
    for i in 0..3 {
        let r = polite
            .check(
                &format!("p{i}"),
                &g,
                Property::Csc,
                Some(Engine::UnfoldingIlp),
                BudgetSpec::default(),
            )
            .expect("polite check");
        assert_eq!(r.verdict.as_deref(), Some("violated"), "{:?}", r.raw);
    }
    let stats = polite.stats().expect("stats");
    assert_eq!(overload_counter(&stats, "over_quota"), hog_shed);
    assert_eq!(overload_counter(&stats, "queue_full"), 0);
    server.shutdown();
}

/// A client that dies mid-batch (dropped socket with jobs queued)
/// must not wedge the pool or corrupt counters: the jobs still run,
/// their responses are dropped, and the server keeps serving.
#[test]
fn a_vanishing_client_leaves_no_debris() {
    let server = spawn(ServerConfig {
        workers: 1,
        ..Default::default()
    })
    .expect("bind");
    let g = vme_g();
    {
        let mut doomed = Client::connect(server.addr()).expect("connect doomed");
        for i in 0..4 {
            doomed
                .submit(&CheckRequest {
                    id: format!("d{i}"),
                    stg_g: g.clone(),
                    property: Property::Csc,
                    engine: Some(Engine::UnfoldingIlp),
                    budget: BudgetSpec::default(),
                })
                .expect("submit");
        }
        // Dropped here: the socket closes with all four jobs pending.
    }
    // Give the pool time to run the orphaned jobs.
    let mut client = Client::connect(server.addr()).expect("connect");
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let stats = client.stats().expect("stats");
        let settled = counter(&stats, "jobs_completed") + counter(&stats, "jobs_errored");
        if settled >= 4 {
            // Undeliverable responses are counted, not lost silently.
            assert!(
                overload_counter(&stats, "responses_dropped") >= 1,
                "{stats:?}"
            );
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "orphaned jobs never settled: {stats:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    // And the pool still serves.
    let after = client
        .check(
            "after",
            &g,
            Property::Csc,
            Some(Engine::UnfoldingIlp),
            BudgetSpec::default(),
        )
        .expect("check after orphan batch");
    assert_eq!(after.verdict.as_deref(), Some("violated"));
    server.shutdown();
}
