//! Regenerates Table 1 of the paper: structural statistics of every
//! benchmark STG and its prefix, plus the timing comparison between
//! the symbolic all-conflicts baseline (`Pfy`) and the unfolding +
//! integer-programming checker (`CLP`).
//!
//! Usage: `cargo run --release -p bench-harness --bin table1
//! [-- --json PATH]`

use std::env;
use std::fs;

use bench_harness::{format_table, models, run_row};

fn main() {
    let args: Vec<String> = env::args().collect();
    let json_path = args
        .windows(2)
        .find(|w| w[0] == "--json")
        .map(|w| w[1].clone());

    eprintln!("regenerating Table 1 ({} models)...", models().len());
    let mut rows = Vec::new();
    for model in models() {
        eprintln!("  {}", model.name);
        rows.push(run_row(&model));
    }
    print!("{}", format_table(&rows));
    println!();
    println!(
        "shape check: conflict-present rows solved by CLP in ≤ {:.2} ms,",
        rows.iter()
            .filter(|r| !r.csc)
            .map(|r| r.clp_ms)
            .fold(0.0f64, f64::max)
    );
    println!(
        "conflict-free rows need exhaustive search (max {:.2} ms).",
        rows.iter()
            .filter(|r| r.csc)
            .map(|r| r.clp_ms)
            .fold(0.0f64, f64::max)
    );

    if let Some(path) = json_path {
        let json = serde_json::to_string_pretty(&rows).expect("rows serialise");
        fs::write(&path, json).expect("write json");
        eprintln!("wrote {path}");
    }
    if rows.iter().any(|r| !r.verdicts_ok) {
        eprintln!("WARNING: verdict mismatch in some rows");
        std::process::exit(1);
    }
}
