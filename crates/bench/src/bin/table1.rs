//! Regenerates Table 1 of the paper: structural statistics of every
//! benchmark STG and its prefix, plus the timing comparison between
//! the symbolic all-conflicts baseline (`Pfy`) and the unfolding +
//! integer-programming checker (`CLP`).
//!
//! Usage: `cargo run --release -p bench-harness --bin table1
//! [-- --json PATH] [-- --budget-ms MS]`
//!
//! With `--budget-ms` each engine gets a per-model wall-clock
//! allowance; aborted runs are recorded in the row (and the JSON)
//! rather than crashing the harness.

use std::env;
use std::fs;
use std::time::Duration;

use bench_harness::{format_table, models, run_row, table_to_json, Budget};

fn main() {
    let args: Vec<String> = env::args().collect();
    let json_path = args
        .windows(2)
        .find(|w| w[0] == "--json")
        .map(|w| w[1].clone());
    let budget = match args
        .windows(2)
        .find(|w| w[0] == "--budget-ms")
        .map(|w| w[1].parse::<u64>())
    {
        Some(Ok(ms)) => Budget::unlimited().with_deadline(Duration::from_millis(ms)),
        Some(Err(_)) => {
            eprintln!("--budget-ms expects a number of milliseconds");
            std::process::exit(2);
        }
        None => Budget::unlimited(),
    };

    eprintln!("regenerating Table 1 ({} models)...", models().len());
    let mut rows = Vec::new();
    for model in models() {
        eprintln!("  {}", model.name);
        rows.push(run_row(&model, &budget));
    }
    print!("{}", format_table(&rows));
    println!();
    println!(
        "shape check: conflict-present rows solved by CLP in ≤ {:.2} ms,",
        rows.iter()
            .filter(|r| r.csc == Some(false))
            .map(|r| r.clp_ms)
            .fold(0.0f64, f64::max)
    );
    println!(
        "conflict-free rows need exhaustive search (max {:.2} ms).",
        rows.iter()
            .filter(|r| r.csc == Some(true))
            .map(|r| r.clp_ms)
            .fold(0.0f64, f64::max)
    );
    let aborted = rows
        .iter()
        .filter(|r| r.csc.is_none())
        .map(|r| r.name.as_str())
        .collect::<Vec<_>>();
    if !aborted.is_empty() {
        println!("inconclusive under the budget: {}.", aborted.join(", "));
    }

    if let Some(path) = json_path {
        fs::write(&path, table_to_json(&rows)).expect("write json");
        eprintln!("wrote {path}");
    }
    if rows.iter().any(|r| !r.verdicts_ok) {
        eprintln!("WARNING: verdict mismatch in some rows");
        std::process::exit(1);
    }
}
