//! The scalability sweep ("figure" series): pipeline stages vs
//! explicit state count, prefix size, and check times for the
//! explicit and unfolding engines. Demonstrates the paper's core
//! claim — the state space grows exponentially while the prefix and
//! the IP check grow polynomially.
//!
//! Usage: `cargo run --release -p bench-harness --bin scale
//! [-- --max N] [-- --json PATH]`

use std::env;
use std::fs;

use bench_harness::{run_scale, run_scale_counterflow};

fn main() {
    let args: Vec<String> = env::args().collect();
    let max: usize = args
        .windows(2)
        .find(|w| w[0] == "--max")
        .and_then(|w| w[1].parse().ok())
        .unwrap_or(8);
    let json_path = args
        .windows(2)
        .find(|w| w[0] == "--json")
        .map(|w| w[1].clone());
    let counterflow = args.iter().any(|a| a == "--counterflow");

    let stages: Vec<usize> = (1..=max).collect();
    let points = if counterflow {
        run_scale_counterflow(&stages, 2, 2_000_000)
    } else {
        run_scale(&stages, 2_000_000)
    };

    println!(
        "{:>3} | {:>10} | {:>6} {:>6} | {:>12} {:>12}",
        "n", "states", "|E|", "|B|", "explicit[ms]", "CLP[ms]"
    );
    println!("{}", "-".repeat(62));
    for p in &points {
        println!(
            "{:>3} | {:>10} | {:>6} {:>6} | {:>12} {:>12.2}",
            p.n,
            p.states
                .map(|s| s.to_string())
                .unwrap_or_else(|| ">cap".to_owned()),
            p.events,
            p.conditions,
            p.explicit_ms
                .map(|t| format!("{t:.2}"))
                .unwrap_or_else(|| "skip".to_owned()),
            p.clp_ms,
        );
    }

    if let Some(path) = json_path {
        let json = serde_json::to_string_pretty(&points).expect("points serialise");
        fs::write(&path, json).expect("write json");
        eprintln!("wrote {path}");
    }
}
