//! The scalability sweep ("figure" series): pipeline stages vs
//! explicit state count, prefix size, and check times for the
//! explicit and unfolding engines. Demonstrates the paper's core
//! claim — the state space grows exponentially while the prefix and
//! the IP check grow polynomially.
//!
//! Usage: `cargo run --release -p bench-harness --bin scale
//! [-- --max N] [-- --json PATH] [-- --budget-ms MS]
//! [-- --budget-bdd-nodes N] [-- --server-bench] [-- --workers N]
//! [-- --cache-bench] [-- --unfold-threads N]`
//!
//! With `--budget-ms` each point's unfolding + IP run gets a
//! wall-clock allowance; aborted points are recorded, not fatal.
//!
//! With `--server-bench` the counterflow suite is additionally pushed
//! through an in-process `stgd` worker pool twice — sequential
//! portfolio vs racing portfolio — and the wall-clock comparison is
//! recorded in the JSON artifact under `"server_bench"`. The per-job
//! budget for those batches comes from `--budget-ms` and
//! `--budget-solver-steps`; a solver-step cap that the larger widths
//! exceed is what separates the two portfolios (the sequential one
//! pays for the exhausted unfolding+IP phase serially).
//!
//! With `--cache-bench` every counterflow width's CSC check is run
//! twice against one artifact cache — cold (set built) and warm (set
//! reused). The warm run of a completed width performs *zero*
//! unfolding work (`warm_events_built = 0`); the comparison lands in
//! the JSON artifact under `"cache_bench"`.
//!
//! With `--unfold-threads N` (N > 1) every counterflow width's
//! prefix is built serially and with an N-worker discovery pool, the
//! two builds are checked event-for-event identical, and the honest
//! wall-clock ratio (typically < 1 on a single-CPU container) lands
//! in the JSON artifact under `"unfold_bench"`.
//!
//! With `--counterflow` the sweep also runs the BDD
//! memory-management comparison (symbolic CSC with GC + auto-reorder
//! on vs off, peak live nodes and gc/reorder counters), recorded
//! under `"bdd_bench"`. `--budget-bdd-nodes` caps the live nodes of
//! those runs — under a cap the managed run may complete where the
//! unmanaged one aborts.

use std::env;
use std::fs;
use std::time::Duration;

use bench_harness::{
    run_bdd_bench, run_cache_bench, run_scale, run_scale_counterflow, run_server_bench,
    run_unfold_bench, scale_artifact_json, Budget,
};

fn main() {
    let args: Vec<String> = env::args().collect();
    let max: usize = args
        .windows(2)
        .find(|w| w[0] == "--max")
        .and_then(|w| w[1].parse().ok())
        .unwrap_or(8);
    let json_path = args
        .windows(2)
        .find(|w| w[0] == "--json")
        .map(|w| w[1].clone());
    let counterflow = args.iter().any(|a| a == "--counterflow");
    let mut budget = match args
        .windows(2)
        .find(|w| w[0] == "--budget-ms")
        .map(|w| w[1].parse::<u64>())
    {
        Some(Ok(ms)) => Budget::unlimited().with_deadline(Duration::from_millis(ms)),
        Some(Err(_)) => {
            eprintln!("--budget-ms expects a number of milliseconds");
            std::process::exit(2);
        }
        None => Budget::unlimited(),
    };
    match args
        .windows(2)
        .find(|w| w[0] == "--budget-bdd-nodes")
        .map(|w| w[1].parse::<usize>())
    {
        Some(Ok(cap)) => budget = budget.with_max_bdd_nodes(cap),
        Some(Err(_)) => {
            eprintln!("--budget-bdd-nodes expects a number of live BDD nodes");
            std::process::exit(2);
        }
        None => {}
    }

    let server_bench = args.iter().any(|a| a == "--server-bench");
    let workers: usize = args
        .windows(2)
        .find(|w| w[0] == "--workers")
        .and_then(|w| w[1].parse().ok())
        .unwrap_or(4);

    let stages: Vec<usize> = (1..=max).collect();
    let points = if counterflow {
        run_scale_counterflow(&stages, 2, 2_000_000, &budget)
    } else {
        run_scale(&stages, 2_000_000, &budget)
    };

    println!(
        "{:>3} | {:>10} | {:>6} {:>6} | {:>12} {:>12} | outcome",
        "n", "states", "|E|", "|B|", "explicit[ms]", "CLP[ms]"
    );
    println!("{}", "-".repeat(72));
    let opt = |v: Option<usize>| v.map_or_else(|| "-".to_owned(), |v| v.to_string());
    for p in &points {
        println!(
            "{:>3} | {:>10} | {:>6} {:>6} | {:>12} {:>12.2} | {}",
            p.n,
            p.states
                .map(|s| s.to_string())
                .unwrap_or_else(|| ">cap".to_owned()),
            opt(p.events),
            opt(p.conditions),
            p.explicit_ms
                .map(|t| format!("{t:.2}"))
                .unwrap_or_else(|| "skip".to_owned()),
            p.clp_ms,
            p.clp_outcome,
        );
    }

    let sb_points = if server_bench {
        let widths: Vec<usize> = (1..=max).collect();
        let spec = server::protocol::BudgetSpec {
            timeout_ms: args
                .windows(2)
                .find(|w| w[0] == "--budget-ms")
                .and_then(|w| w[1].parse().ok()),
            max_solver_steps: args
                .windows(2)
                .find(|w| w[0] == "--budget-solver-steps")
                .and_then(|w| w[1].parse().ok()),
            ..Default::default()
        };
        let sb = run_server_bench(&widths, 2, workers, 2 * workers, spec);
        println!();
        println!(
            "{:>3} | {:>4} {:>7} | {:>13} {:>9} | {:>7} | {:>5} {:>7} | winners",
            "n", "jobs", "workers", "portfolio[ms]", "race[ms]", "speedup", "sheds", "retries"
        );
        println!("{}", "-".repeat(88));
        for p in &sb {
            let winners = p
                .race_winners
                .iter()
                .map(|(name, count)| format!("{name}:{count}"))
                .collect::<Vec<_>>()
                .join(",");
            println!(
                "{:>3} | {:>4} {:>7} | {:>13.2} {:>9.2} | {:>6.2}x | {:>5} {:>7} | {}{}",
                p.n,
                p.jobs,
                p.workers,
                p.portfolio_ms,
                p.race_ms,
                p.speedup,
                p.sheds,
                p.retries,
                winners,
                if p.verdicts_ok {
                    ""
                } else {
                    " VERDICT MISMATCH"
                },
            );
        }
        sb
    } else {
        Vec::new()
    };

    let cb_points = if args.iter().any(|a| a == "--cache-bench") {
        let widths: Vec<usize> = (1..=max).collect();
        let cb = run_cache_bench(&widths, 2, &budget);
        println!();
        println!(
            "{:>3} | {:>9} {:>9} | {:>7} | {:>10} {:>10}",
            "n", "cold[ms]", "warm[ms]", "speedup", "cold-built", "warm-built"
        );
        println!("{}", "-".repeat(64));
        let opt = |v: Option<usize>| v.map_or_else(|| "-".to_owned(), |v| v.to_string());
        for p in &cb {
            println!(
                "{:>3} | {:>9.2} {:>9.2} | {:>6.2}x | {:>10} {:>10}{}",
                p.n,
                p.cold_ms,
                p.warm_ms,
                p.speedup,
                opt(p.cold_events_built),
                opt(p.warm_events_built),
                if p.verdicts_ok {
                    ""
                } else {
                    " VERDICT MISMATCH"
                },
            );
        }
        cb
    } else {
        Vec::new()
    };

    // The counterflow sweep doubles as the BDD memory-management
    // benchmark: the symbolic engine's peak live nodes with GC +
    // auto-reorder on vs off, verdicts and witnesses identical.
    let bdd_points = if counterflow {
        let bb = run_bdd_bench(&stages, 2, &budget);
        println!();
        println!(
            "{:>3} | {:>12} {:>14} | {:>9} | {:>7} {:>8} | outcome",
            "n", "managed-peak", "unmanaged-peak", "reduction", "gc-runs", "reorders"
        );
        println!("{}", "-".repeat(80));
        let opt = |v: Option<usize>| v.map_or_else(|| "-".to_owned(), |v| v.to_string());
        for p in &bb {
            println!(
                "{:>3} | {:>12} {:>14} | {:>8} | {:>7} {:>8} | {}{}",
                p.n,
                opt(p.managed_peak),
                opt(p.unmanaged_peak),
                p.reduction
                    .map(|r| format!("{r:.2}x"))
                    .unwrap_or_else(|| "-".to_owned()),
                p.gc_runs,
                p.reorder_passes,
                if p.managed_outcome == "completed" && p.unmanaged_outcome == "completed" {
                    "completed"
                } else {
                    "aborted"
                },
                if p.verdicts_ok {
                    ""
                } else {
                    " VERDICT MISMATCH"
                },
            );
        }
        bb
    } else {
        Vec::new()
    };

    let unfold_threads: usize = args
        .windows(2)
        .find(|w| w[0] == "--unfold-threads")
        .and_then(|w| w[1].parse().ok())
        .unwrap_or(1);
    let ub_points = if unfold_threads > 1 {
        let widths: Vec<usize> = (1..=max).collect();
        let ub = run_unfold_bench(&widths, 2, unfold_threads);
        println!();
        println!(
            "{:>3} | {:>7} | {:>10} {:>12} | {:>7} | {:>6} | identical",
            "n", "threads", "serial[ms]", "parallel[ms]", "speedup", "|E|"
        );
        println!("{}", "-".repeat(68));
        for p in &ub {
            println!(
                "{:>3} | {:>7} | {:>10.2} {:>12.2} | {:>6.2}x | {:>6} | {}",
                p.n,
                p.unfold_threads,
                p.serial_ms,
                p.parallel_ms,
                p.speedup,
                p.events,
                if p.identical { "yes" } else { "DIVERGED" },
            );
        }
        assert!(
            ub.iter().all(|p| p.identical),
            "parallel prefix construction must be bit-identical to serial"
        );
        ub
    } else {
        Vec::new()
    };

    if let Some(path) = json_path {
        fs::write(
            &path,
            scale_artifact_json(&points, &sb_points, &cb_points, &bdd_points, &ub_points),
        )
        .expect("write json");
        eprintln!("wrote {path}");
    }
}
