//! The scalability sweep ("figure" series): pipeline stages vs
//! explicit state count, prefix size, and check times for the
//! explicit and unfolding engines. Demonstrates the paper's core
//! claim — the state space grows exponentially while the prefix and
//! the IP check grow polynomially.
//!
//! Usage: `cargo run --release -p bench-harness --bin scale
//! [-- --max N] [-- --json PATH] [-- --budget-ms MS]`
//!
//! With `--budget-ms` each point's unfolding + IP run gets a
//! wall-clock allowance; aborted points are recorded, not fatal.

use std::env;
use std::fs;
use std::time::Duration;

use bench_harness::{run_scale, run_scale_counterflow, scale_to_json, Budget};

fn main() {
    let args: Vec<String> = env::args().collect();
    let max: usize = args
        .windows(2)
        .find(|w| w[0] == "--max")
        .and_then(|w| w[1].parse().ok())
        .unwrap_or(8);
    let json_path = args
        .windows(2)
        .find(|w| w[0] == "--json")
        .map(|w| w[1].clone());
    let counterflow = args.iter().any(|a| a == "--counterflow");
    let budget = match args
        .windows(2)
        .find(|w| w[0] == "--budget-ms")
        .map(|w| w[1].parse::<u64>())
    {
        Some(Ok(ms)) => Budget::unlimited().with_deadline(Duration::from_millis(ms)),
        Some(Err(_)) => {
            eprintln!("--budget-ms expects a number of milliseconds");
            std::process::exit(2);
        }
        None => Budget::unlimited(),
    };

    let stages: Vec<usize> = (1..=max).collect();
    let points = if counterflow {
        run_scale_counterflow(&stages, 2, 2_000_000, &budget)
    } else {
        run_scale(&stages, 2_000_000, &budget)
    };

    println!(
        "{:>3} | {:>10} | {:>6} {:>6} | {:>12} {:>12} | outcome",
        "n", "states", "|E|", "|B|", "explicit[ms]", "CLP[ms]"
    );
    println!("{}", "-".repeat(72));
    let opt = |v: Option<usize>| v.map_or_else(|| "-".to_owned(), |v| v.to_string());
    for p in &points {
        println!(
            "{:>3} | {:>10} | {:>6} {:>6} | {:>12} {:>12.2} | {}",
            p.n,
            p.states
                .map(|s| s.to_string())
                .unwrap_or_else(|| ">cap".to_owned()),
            opt(p.events),
            opt(p.conditions),
            p.explicit_ms
                .map(|t| format!("{t:.2}"))
                .unwrap_or_else(|| "skip".to_owned()),
            p.clp_ms,
            p.clp_outcome,
        );
    }

    if let Some(path) = json_path {
        fs::write(&path, scale_to_json(&points)).expect("write json");
        eprintln!("wrote {path}");
    }
}
