//! Benchmark harness regenerating the paper's evaluation.
//!
//! The roster in [`models`] mirrors the 15 rows of Table 1 (DATE
//! 2002): ring protocol adapters, duplex channel controllers and
//! counterflow pipeline controllers, rebuilt parametrically (see
//! DESIGN.md §2 for the substitution rationale). For every model the
//! harness reports the paper's columns:
//!
//! `|S| |T| |Z|` of the STG, `|B| |E| |E_cut|` of its complete
//! prefix, the time of the BDD-based all-conflicts baseline (the
//! paper's `Pfy` column) and the time of the unfolding + integer
//! programming checker (`CLP`).
//!
//! Binaries:
//!
//! * `table1` — prints the table and writes `table1.json`;
//! * `scale`  — the scalability sweep (pipeline width vs state count,
//!   prefix size, engine times); with `--server-bench` it also
//!   batches the counterflow suite through an in-process `stgd`
//!   twice — sequential portfolio vs racing portfolio — and records
//!   the wall-clock comparison; with `--cache-bench` it measures the
//!   artifact cache (cold check vs warm check on a cached artifact
//!   set, the warm one performing zero unfolding work).

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use csc_core::Budget;
use csc_core::{CheckOutcome, CheckRequest, Checker, CheckerOptions, Engine, Property, Verdict};
use resolve::{resolve_csc_with_report, ResolveOutcome, ResolverOptions};
use stg::gen::counterflow::{counterflow_asym, counterflow_sym};
use stg::gen::duplex::{dup_4ph, dup_mod};
use stg::gen::pipeline::muller_pipeline;
use stg::gen::ring::{eager_ring, lazy_ring};
use stg::Stg;
use symbolic::{SymbolicBudget, SymbolicChecker, SymbolicOptions};

/// A named benchmark instance.
pub struct BenchModel {
    /// Row name, following the paper's Table 1.
    pub name: &'static str,
    /// The generated STG.
    pub stg: Stg,
    /// Expected CSC verdict (`true` = satisfies CSC), used as a
    /// sanity check; the harness re-derives it and flags mismatches.
    pub expect_csc: bool,
}

/// The Table 1 roster. The paper's exact STG files are not archived;
/// the parameters below size each family into the same structural
/// regime (see DESIGN.md). The top half contains coding conflicts,
/// the bottom (CF-*-CSC) half is conflict-free.
pub fn models() -> Vec<BenchModel> {
    vec![
        BenchModel {
            name: "LAZYRING",
            stg: lazy_ring(4),
            expect_csc: false,
        },
        BenchModel {
            name: "RING",
            stg: eager_ring(4),
            expect_csc: false,
        },
        BenchModel {
            name: "DUP-4PH-A",
            stg: dup_4ph(1, false),
            expect_csc: false,
        },
        BenchModel {
            name: "DUP-4PH-B",
            stg: dup_4ph(2, false),
            expect_csc: false,
        },
        BenchModel {
            name: "DUP-4PH-MTR-A",
            stg: dup_4ph(3, false),
            expect_csc: false,
        },
        BenchModel {
            name: "DUP-4PH-MTR-B",
            stg: dup_4ph(4, false),
            expect_csc: false,
        },
        BenchModel {
            name: "DUP-MOD-A",
            stg: dup_mod(2),
            expect_csc: false,
        },
        BenchModel {
            name: "DUP-MOD-B",
            stg: dup_mod(4),
            expect_csc: false,
        },
        BenchModel {
            name: "DUP-MOD-C",
            stg: dup_mod(6),
            expect_csc: false,
        },
        BenchModel {
            name: "CF-SYM-A-CSC",
            stg: counterflow_sym(2, 3),
            expect_csc: true,
        },
        BenchModel {
            name: "CF-SYM-B-CSC",
            stg: counterflow_sym(3, 3),
            expect_csc: true,
        },
        BenchModel {
            name: "CF-SYM-C-CSC",
            stg: counterflow_sym(2, 5),
            expect_csc: true,
        },
        BenchModel {
            name: "CF-SYM-D-CSC",
            stg: counterflow_sym(4, 2),
            expect_csc: true,
        },
        BenchModel {
            name: "CF-ASYM-A-CSC",
            stg: counterflow_asym(3, 2),
            expect_csc: true,
        },
        BenchModel {
            name: "CF-ASYM-B-CSC",
            stg: counterflow_asym(4, 2),
            expect_csc: true,
        },
    ]
}

/// One row of the regenerated Table 1. Structural fields of an
/// engine that exhausted its budget are `None`, with the abort
/// recorded in the matching `*_outcome` string — an interrupted run
/// still produces a (partial) row instead of crashing the harness.
#[derive(Debug, Clone)]
pub struct TableRow {
    /// Model name.
    pub name: String,
    /// Places of the STG.
    pub s: usize,
    /// Transitions of the STG.
    pub t: usize,
    /// Signals of the STG.
    pub z: usize,
    /// Conditions of the prefix (`None` if unfolding was aborted).
    pub b: Option<usize>,
    /// Events of the prefix (`None` if unfolding was aborted).
    pub e: Option<usize>,
    /// Cut-off events of the prefix (`None` if unfolding was
    /// aborted).
    pub e_cut: Option<usize>,
    /// Reachable states as counted by the symbolic engine (`None` if
    /// it was aborted).
    pub states: Option<f64>,
    /// Symbolic all-conflicts baseline time, milliseconds (time
    /// spent even when aborted).
    pub pfy_ms: f64,
    /// Unfolding + IP (first conflict / absence proof) time,
    /// milliseconds (time spent even when aborted).
    pub clp_ms: f64,
    /// `"completed"`, or `"aborted: <reason>"` for the symbolic run.
    pub pfy_outcome: String,
    /// `"completed"`, or `"aborted: <reason>"` for the unfolding+IP
    /// run.
    pub clp_outcome: String,
    /// BDD nodes allocated by the symbolic engine (partial work on
    /// abort).
    pub bdd_nodes: usize,
    /// Solver propagation steps of the IP engine (`None` when the
    /// prefix itself was aborted).
    pub solver_steps: Option<u64>,
    /// The CSC verdict (`None` when both engines were inconclusive).
    pub csc: Option<bool>,
    /// Static lint pass time (structural checks, semiflow proofs and
    /// the LP-relaxation proofs), milliseconds.
    pub lint_ms: f64,
    /// The most specific structural net class of the model
    /// (`"marked-graph"`, `"state-machine"`, `"free-choice"`,
    /// `"extended-free-choice"`, `"reduced-asymmetric-choice"` or
    /// `"general"`), as detected by the structure pass.
    pub class: String,
    /// Structure pass time (net-class detection, structural
    /// concurrency, lock relation), milliseconds.
    pub structure_ms: f64,
    /// Whether the lint LP relaxation proved USC/CSC outright — a
    /// verdict obtained with zero state-space exploration. Must only
    /// ever be `true` on conflict-free rows (checked by
    /// `verdicts_ok`).
    pub lint_proved: bool,
    /// State-equation CEGAR engine time for the CSC check,
    /// milliseconds (time spent even when it abstained). An
    /// unbudgeted harness run still caps this engine at
    /// [`CEGAR_ALLOWANCE`] so a non-terminating integer search
    /// degrades to an `unknown` row instead of hanging the table.
    pub cegar_ms: f64,
    /// The CEGAR verdict: `"holds"`, `"violated"`, or
    /// `"unknown: <reason>"`.
    pub cegar_verdict: String,
    /// Resolution outcome for conflicted rows: `"resolved"`,
    /// `"failed: <n> remaining"`, `"aborted: <reason>"`, `"skipped:
    /// check inconclusive"`, or `"-"` on the conflict-free half
    /// (nothing to resolve).
    pub resolve_outcome: String,
    /// State signals the resolver inserted (`None` unless resolved).
    pub resolve_signals: Option<usize>,
    /// Resolution wall-clock, milliseconds (0 when not attempted).
    pub resolve_ms: f64,
    /// Prefix events built by a *cold* re-verification of the
    /// resolved net from a fresh artifact set.
    pub resolve_verify_cold_events: Option<usize>,
    /// Prefix events rebuilt by the *warm* re-verification over the
    /// resolver's own artifact set — `Some(0)` whenever incremental
    /// re-verification worked (the regression test pins this).
    pub resolve_verify_warm_events: Option<usize>,
    /// Whether every *definite* verdict matched the expectation and
    /// the other engine; inconclusive runs are not mismatches.
    pub verdicts_ok: bool,
}

/// Wall-clock allowance for the CEGAR column when the harness itself
/// runs unbudgeted. Branch-and-bound over the exact rational simplex
/// has no useful worst-case bound; the sweep must terminate anyway.
pub const CEGAR_ALLOWANCE: Duration = Duration::from_secs(60);

/// Live-node allowance for the BDD management benchmark when the
/// harness runs without `--budget-bdd-nodes`. The unmanaged leg's
/// peak grows without bound in the counterflow width (23.7M live
/// nodes already at width 6), so an uncapped sweep over larger widths
/// never terminates; past that allowance the leg reports `aborted`
/// instead.
pub const BDD_BENCH_NODE_ALLOWANCE: usize = 32_000_000;

/// The harness budget with the CEGAR fallback deadline applied.
fn cegar_budget(budget: &Budget) -> Budget {
    if budget.deadline.is_some() {
        budget.clone()
    } else {
        budget.clone().with_deadline(CEGAR_ALLOWANCE)
    }
}

/// Per-engine checker options derived from a [`Budget`]'s discrete
/// caps (the wall clock and cancellation travel via the guard).
fn checker_options(budget: &Budget) -> CheckerOptions {
    let mut options = CheckerOptions::default();
    if let Some(cap) = budget.max_events {
        options.unfold.max_events = cap;
    }
    if let Some(cap) = budget.max_solver_steps {
        options.solver.max_steps = cap;
    }
    options
}

/// Measures one model end to end under `budget`. Each engine gets a
/// fresh guard (the deadline is a per-engine allowance: the columns
/// are compared against each other, so neither may inherit the
/// other's leftovers).
pub fn run_row(model: &BenchModel, budget: &Budget) -> TableRow {
    let stg = &model.stg;

    // The static pass first: no state-space exploration, so its time
    // is comparable against both engines' columns. On the
    // conflict-free half the LP proof alone decides the row.
    let t_lint = Instant::now();
    let lint_report = lint::lint_stg(stg, &lint::LintOptions::default());
    let lint_ms = t_lint.elapsed().as_secs_f64() * 1e3;
    let lint_proved = lint_report.proofs.usc_proved;

    // The structure pass alongside it: net-class detection plus the
    // structural concurrency and lock relations, again with no
    // state-space exploration.
    let t_structure = Instant::now();
    let structure = lint::structure::analyse(stg);
    let structure_ms = t_structure.elapsed().as_secs_f64() * 1e3;
    let class = structure.classes.name().to_owned();

    let t0 = Instant::now();
    let mut symbolic = SymbolicChecker::new(stg);
    let sym_budget = SymbolicBudget {
        guard: budget.guard(),
        max_nodes: budget.max_bdd_nodes,
    };
    let sym = symbolic.try_analyse(&sym_budget);
    let pfy_ms = t0.elapsed().as_secs_f64() * 1e3;
    let (states, sym_csc, pfy_outcome) = match &sym {
        Ok(report) => (
            Some(report.num_states),
            Some(report.satisfies_csc()),
            "completed".to_owned(),
        ),
        Err(stop) => (None, None, format!("aborted: {stop}")),
    };

    let t1 = Instant::now();
    let (prefix_stats, clp_csc, solver_steps, clp_outcome) =
        match Checker::with_options_guarded(stg, checker_options(budget), budget.guard()) {
            Ok(checker) => {
                let prefix = checker.prefix();
                let stats = Some((
                    prefix.num_conditions(),
                    prefix.num_events(),
                    prefix.num_cutoffs(),
                ));
                match checker.check_csc() {
                    Ok(outcome) => (
                        stats,
                        Some(matches!(outcome, CheckOutcome::Satisfied)),
                        Some(checker.solver_steps()),
                        "completed".to_owned(),
                    ),
                    Err(e) => (
                        stats,
                        None,
                        Some(checker.solver_steps()),
                        format!("aborted: {e}"),
                    ),
                }
            }
            Err(e) => (None, None, None, format!("aborted: {e}")),
        };
    let clp_ms = t1.elapsed().as_secs_f64() * 1e3;

    // The state-equation CEGAR engine: no prefix, no BDDs — its
    // column shows what the marking equation alone decides.
    let t2 = Instant::now();
    let cegar_run = CheckRequest::new(stg, Property::Csc)
        .engine(Engine::Cegar)
        .budget(cegar_budget(budget))
        .run();
    let cegar_ms = t2.elapsed().as_secs_f64() * 1e3;
    let (cegar_csc, cegar_verdict) = match &cegar_run {
        Ok(run) => match &run.verdict {
            Verdict::Holds => (Some(true), "holds".to_owned()),
            Verdict::Violated(_) => (Some(false), "violated".to_owned()),
            Verdict::Unknown(reason) => (None, format!("unknown: {reason}")),
        },
        Err(e) => (None, format!("unknown: {e}")),
    };

    // The resolve columns: every *confirmed*-conflicted row is
    // repaired by the state-signal resolver, and the repaired net is
    // re-verified twice — warm over the resolver's own artifact set
    // (incremental re-verification must rebuild zero prefix events)
    // and cold from scratch — so the saving is pinned in the
    // artifact, not just claimed.
    let t3 = Instant::now();
    let (resolve_outcome, resolve_signals, cold_events, warm_events) = if model.expect_csc {
        ("-".to_owned(), None, None, None)
    } else if clp_csc.or(sym_csc).is_none() {
        // Neither engine confirmed the conflict under this budget;
        // resolving an unconfirmed row would dwarf the row's own
        // columns for no comparable number.
        ("skipped: check inconclusive".to_owned(), None, None, None)
    } else {
        let options = ResolverOptions {
            budget: cegar_budget(budget),
            ..Default::default()
        };
        match resolve_csc_with_report(stg, &options, None) {
            Ok(run) => match run.outcome {
                ResolveOutcome::Resolved {
                    stg: fixed,
                    inserted,
                } => {
                    let warm = run.artifacts.as_ref().and_then(|arts| {
                        let net = arts.shared_stg();
                        CheckRequest::new(&net, Property::Csc)
                            .engine(Engine::UnfoldingIlp)
                            .budget(cegar_budget(budget))
                            .artifacts(arts)
                            .run()
                            .ok()
                            .filter(|r| matches!(r.verdict, Verdict::Holds))
                            .and_then(|r| r.report.prefix_events_built)
                    });
                    let cold = CheckRequest::new(&fixed, Property::Csc)
                        .engine(Engine::UnfoldingIlp)
                        .budget(cegar_budget(budget))
                        .run()
                        .ok()
                        .filter(|r| matches!(r.verdict, Verdict::Holds))
                        .and_then(|r| r.report.prefix_events_built);
                    ("resolved".to_owned(), Some(inserted.len()), cold, warm)
                }
                ResolveOutcome::Failed { remaining, .. } => {
                    (format!("failed: {remaining} remaining"), None, None, None)
                }
                ResolveOutcome::AlreadySatisfied => {
                    // Contradiction with the confirmed conflict — let
                    // the verdict column flag it.
                    ("already-satisfied".to_owned(), None, None, None)
                }
            },
            Err(e) => (format!("aborted: {e}"), None, None, None),
        }
    };
    let resolve_ms = if model.expect_csc {
        0.0
    } else {
        t3.elapsed().as_secs_f64() * 1e3
    };

    let verdicts_ok = match (clp_csc, sym_csc) {
        (Some(clp), Some(sym)) => clp == model.expect_csc && sym == clp,
        (Some(v), None) | (None, Some(v)) => v == model.expect_csc,
        (None, None) => true,
    }
    // The LP proof is sound: claiming USC/CSC on a conflicted row
    // (or erroring on a Table 1 family) would be a lint bug.
    && (!lint_proved || model.expect_csc)
        && !lint_report.has_errors()
    // A definite CEGAR verdict must match the expectation too; an
    // abstention is not a mismatch.
        && cegar_csc.is_none_or(|v| v == model.expect_csc)
    // Resolution soundness: a resolved row must re-prove CSC both
    // warm and cold, and the warm leg must be fully incremental (no
    // prefix events rebuilt). Aborted/skipped rows are inconclusive,
    // but "already satisfied" contradicts the confirmed conflict.
        && match resolve_outcome.as_str() {
            "resolved" => warm_events == Some(0) && cold_events.is_some_and(|c| c > 0),
            "already-satisfied" => false,
            _ => true,
        };
    TableRow {
        name: model.name.to_owned(),
        s: stg.net().num_places(),
        t: stg.net().num_transitions(),
        z: stg.num_signals(),
        b: prefix_stats.map(|(b, _, _)| b),
        e: prefix_stats.map(|(_, e, _)| e),
        e_cut: prefix_stats.map(|(_, _, c)| c),
        states,
        pfy_ms,
        clp_ms,
        pfy_outcome,
        clp_outcome,
        bdd_nodes: symbolic.nodes_allocated(),
        solver_steps,
        csc: clp_csc.or(sym_csc),
        lint_ms,
        class,
        structure_ms,
        lint_proved,
        cegar_ms,
        cegar_verdict,
        resolve_outcome,
        resolve_signals,
        resolve_ms,
        resolve_verify_cold_events: cold_events,
        resolve_verify_warm_events: warm_events,
        verdicts_ok,
    }
}

/// Formats rows as an aligned text table in the paper's column
/// order.
pub fn format_table(rows: &[TableRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<16} {:>4} {:>4} {:>3} {:>5} | {:>5} {:>5} {:>4} | {:>8} | {:>9} {:>9} {:>8} {:>7} {:>9} | {:>4} {:>3} {:>4} | {:>9} {:>3} {:>7} | {:>3}\n",
        "Problem", "S", "T", "Z", "class", "B", "E", "Ecut", "states", "Pfy[ms]", "CLP[ms]", "Lnt[ms]", "Str[ms]", "CGR[ms]", "CSC", "LP", "CGR", "Rsv[ms]", "sig", "w/c", "ok"
    ));
    out.push_str(&"-".repeat(165));
    out.push('\n');
    let opt = |v: Option<usize>| v.map_or_else(|| "-".to_owned(), |v| v.to_string());
    // The table column uses the conventional short class tags; the
    // JSON keeps the full names.
    let class_tag = |class: &str| match class {
        "marked-graph" => "MG",
        "state-machine" => "SM",
        "free-choice" => "FC",
        "extended-free-choice" => "EFC",
        "reduced-asymmetric-choice" => "RAC",
        _ => "GEN",
    };
    for r in rows {
        out.push_str(&format!(
            "{:<16} {:>4} {:>4} {:>3} {:>5} | {:>5} {:>5} {:>4} | {:>8} | {:>9.2} {:>9.2} {:>8.2} {:>7.2} {:>9.2} | {:>4} {:>3} {:>4} | {:>9.2} {:>3} {:>7} | {:>3}\n",
            r.name,
            r.s,
            r.t,
            r.z,
            class_tag(&r.class),
            opt(r.b),
            opt(r.e),
            opt(r.e_cut),
            r.states.map_or_else(|| "-".to_owned(), |s| format!("{s:.0}")),
            r.pfy_ms,
            r.clp_ms,
            r.lint_ms,
            r.structure_ms,
            r.cegar_ms,
            match r.csc {
                Some(true) => "yes",
                Some(false) => "no",
                None => "?",
            },
            if r.lint_proved { "yes" } else { "-" },
            match r.cegar_verdict.as_str() {
                "holds" => "yes",
                "violated" => "no",
                _ => "?",
            },
            r.resolve_ms,
            opt(r.resolve_signals),
            match (r.resolve_verify_warm_events, r.resolve_verify_cold_events) {
                (Some(w), Some(c)) => format!("{w}/{c}"),
                _ if r.resolve_outcome == "-" => "-".to_owned(),
                _ => "?".to_owned(),
            },
            if r.verdicts_ok { "ok" } else { "BAD" },
        ));
    }
    out
}

/// One point of the scalability sweep (the "figure" series).
#[derive(Debug, Clone)]
pub struct ScalePoint {
    /// Pipeline stages.
    pub n: usize,
    /// Reachable states (explicit; `None` if over the cap).
    pub states: Option<usize>,
    /// Prefix events (`None` if unfolding was aborted).
    pub events: Option<usize>,
    /// Prefix conditions (`None` if unfolding was aborted).
    pub conditions: Option<usize>,
    /// Explicit state-graph CSC check time, ms (`None` if skipped).
    pub explicit_ms: Option<f64>,
    /// Unfolding + IP CSC check time, ms (time spent even when
    /// aborted).
    pub clp_ms: f64,
    /// `"completed"`, or `"aborted: <reason>"` for the unfolding+IP
    /// run.
    pub clp_outcome: String,
    /// State-equation CEGAR CSC check time, ms (time spent even when
    /// it abstained).
    pub cegar_ms: f64,
    /// The CEGAR verdict: `"holds"`, `"violated"`, or
    /// `"unknown: <reason>"`.
    pub cegar_verdict: String,
}

/// One budgeted sweep point: explicit exploration capped at
/// `explicit_cap` states, unfolding + IP under `budget`. If
/// `expect_satisfied` is set, a *completed* IP run must report CSC
/// satisfied (an aborted one is recorded, not asserted on).
fn scale_point(
    stg: &Stg,
    n: usize,
    explicit_cap: usize,
    budget: &Budget,
    expect_satisfied: bool,
) -> ScalePoint {
    let limits = petri::ExploreLimits {
        max_states: explicit_cap,
        token_bound: 1,
    };
    let t0 = Instant::now();
    let explicit = stg::StateGraph::build(stg, limits).ok();
    let explicit_ms = explicit.as_ref().map(|sg| {
        let _ = sg.csc_conflict_pairs(stg);
        t0.elapsed().as_secs_f64() * 1e3
    });
    let t1 = Instant::now();
    let (prefix_stats, clp_outcome) =
        match Checker::with_options_guarded(stg, checker_options(budget), budget.guard()) {
            Ok(checker) => {
                let prefix = checker.prefix();
                let stats = Some((prefix.num_events(), prefix.num_conditions()));
                match checker.check_csc() {
                    Ok(outcome) => {
                        assert!(
                            !expect_satisfied || matches!(outcome, CheckOutcome::Satisfied),
                            "counterflow is conflict-free by construction"
                        );
                        (stats, "completed".to_owned())
                    }
                    Err(e) => (stats, format!("aborted: {e}")),
                }
            }
            Err(e) => (None, format!("aborted: {e}")),
        };
    let clp_ms = t1.elapsed().as_secs_f64() * 1e3;
    let t2 = Instant::now();
    let cegar_run = CheckRequest::new(stg, Property::Csc)
        .engine(Engine::Cegar)
        .budget(cegar_budget(budget))
        .run();
    let cegar_ms = t2.elapsed().as_secs_f64() * 1e3;
    let cegar_verdict = match &cegar_run {
        Ok(run) => match &run.verdict {
            Verdict::Holds => "holds".to_owned(),
            Verdict::Violated(_) => {
                assert!(
                    !expect_satisfied,
                    "CEGAR refuted a conflict-free-by-construction model"
                );
                "violated".to_owned()
            }
            Verdict::Unknown(reason) => format!("unknown: {reason}"),
        },
        Err(e) => format!("unknown: {e}"),
    };
    ScalePoint {
        n,
        states: explicit.as_ref().map(stg::StateGraph::num_states),
        events: prefix_stats.map(|(e, _)| e),
        conditions: prefix_stats.map(|(_, b)| b),
        explicit_ms,
        clp_ms,
        clp_outcome,
        cegar_ms,
        cegar_verdict,
    }
}

/// Runs the pipeline scalability sweep for `stages`, capping explicit
/// exploration at `explicit_cap` states and the unfolding + IP
/// engine at `budget`.
pub fn run_scale(stages: &[usize], explicit_cap: usize, budget: &Budget) -> Vec<ScalePoint> {
    stages
        .iter()
        .map(|&n| scale_point(&muller_pipeline(n), n, explicit_cap, budget, false))
        .collect()
}

/// Runs the conflict-free absence-proof sweep: counterflow
/// controllers of growing `width` at fixed `depth` — the hard half of
/// the workload, where the IP engine must exhaust its search space.
pub fn run_scale_counterflow(
    widths: &[usize],
    depth: usize,
    explicit_cap: usize,
    budget: &Budget,
) -> Vec<ScalePoint> {
    widths
        .iter()
        .map(|&w| scale_point(&counterflow_sym(w, depth), w, explicit_cap, budget, true))
        .collect()
}

/// One width of the server-bench comparison: the same counterflow
/// batch pushed through one `stgd` worker pool twice, once with the
/// sequential portfolio and once with the racing portfolio.
///
/// The interesting regime is a *bounded* per-job budget (say a
/// solver-step cap): widths whose absence proof exceeds the cap make
/// the sequential portfolio pay for the failed unfolding+IP phase
/// before the explicit fallback even starts, while the race runs
/// both concurrently and adopts whichever concludes first.
#[derive(Debug, Clone)]
pub struct ServerBenchPoint {
    /// Counterflow width.
    pub n: usize,
    /// Jobs in the batch.
    pub jobs: usize,
    /// Worker threads of the pool.
    pub workers: usize,
    /// Per-job wall-clock allowance, milliseconds (`None` =
    /// unlimited).
    pub budget_ms: Option<u64>,
    /// Per-job IP solver propagation cap (`None` = unlimited).
    pub budget_solver_steps: Option<u64>,
    /// Batch wall-clock with `engine = portfolio`, milliseconds.
    pub portfolio_ms: f64,
    /// Batch wall-clock with `engine = race`, milliseconds.
    pub race_ms: f64,
    /// `portfolio_ms / race_ms` (> 1 means the race won).
    pub speedup: f64,
    /// Engines that won races in this batch, with win counts.
    pub race_winners: Vec<(String, usize)>,
    /// Load-shedding responses (`queue_full`/`over_quota`) received
    /// across both batches; each shed job was resubmitted after the
    /// server's `retry_after_ms` hint.
    pub sheds: u64,
    /// Client-side resubmissions across both batches (sheds plus
    /// `worker_crashed` retries).
    pub retries: u64,
    /// Whether every job of both batches came back conclusive with
    /// the expected verdict (counterflow is conflict-free).
    pub verdicts_ok: bool,
}

/// Times one batch (`reps` identical CSC jobs on the counterflow
/// model of width `n`) against a running server, returning the batch
/// wall-clock, per-engine race-win counts, whether every verdict was
/// the expected `holds`, and the shed/retry counts of the run.
///
/// The batch is pipelined, so a bounded server may shed some of it
/// with `queue_full`; shed jobs are resubmitted after the server's
/// `retry_after_ms` hint until every job has a terminal verdict —
/// the measured wall-clock therefore includes the retry traffic, as
/// a real overloaded client would experience it.
fn server_batch(
    addr: std::net::SocketAddr,
    g_text: &str,
    n: usize,
    reps: usize,
    engine: Engine,
    budget: server::protocol::BudgetSpec,
) -> (f64, Vec<(String, usize)>, bool, u64, u64) {
    use server::protocol::CheckRequest;
    let request = |id: String| CheckRequest {
        id,
        stg_g: g_text.to_owned(),
        property: Property::Csc,
        engine: Some(engine),
        budget,
    };
    // The default 30 s read timeout is sized for interactive use; a
    // pipelined batch racing four engines on one core can keep a
    // response in flight for longer than that, so give the bench
    // client a leash sized for the workload instead.
    let mut client = server::Client::connect_with_timeout(addr, Some(Duration::from_secs(300)))
        .expect("connect to in-process stgd");
    let t0 = Instant::now();
    for rep in 0..reps {
        client
            .submit(&request(format!("cf{n}-{}-{rep}", engine.name())))
            .expect("submit job");
    }
    let mut ok = true;
    let mut winners: Vec<(String, usize)> = Vec::new();
    let (mut sheds, mut retries) = (0u64, 0u64);
    let mut outstanding = reps;
    while outstanding > 0 {
        let response = client.read_response().expect("read verdict");
        if response.is_retryable() {
            // Shed or crashed: resubmit the same id after the
            // server's hint (idempotent job, same verdict).
            if response.code.as_deref() != Some("worker_crashed") {
                sheds += 1;
            }
            retries += 1;
            if let Some(ms) = response.retry_after_ms {
                std::thread::sleep(std::time::Duration::from_millis(ms.min(250)));
            }
            let id = response.id.expect("shed response echoes the id");
            client.submit(&request(id)).expect("resubmit shed job");
            continue;
        }
        outstanding -= 1;
        ok &= response.verdict.as_deref() == Some("holds");
        if let Some(winner) = response.winner {
            match winners.iter_mut().find(|(name, _)| *name == winner) {
                Some((_, count)) => *count += 1,
                None => winners.push((winner, 1)),
            }
        }
    }
    (
        t0.elapsed().as_secs_f64() * 1e3,
        winners,
        ok,
        sheds,
        retries,
    )
}

/// Runs the server-bench comparison over counterflow `widths` at
/// fixed `depth`: each width's batch of `reps` CSC jobs is served by
/// one in-process `stgd` pool of `workers` threads, first with the
/// sequential portfolio, then with the racing portfolio, every job
/// under the same per-job `budget`.
pub fn run_server_bench(
    widths: &[usize],
    depth: usize,
    workers: usize,
    reps: usize,
    budget: server::protocol::BudgetSpec,
) -> Vec<ServerBenchPoint> {
    let handle = server::spawn(server::ServerConfig {
        workers,
        ..Default::default()
    })
    .expect("bind in-process stgd on an ephemeral port");
    let points = widths
        .iter()
        .map(|&n| {
            let g_text = stg::to_g_format(&counterflow_sym(n, depth), "counterflow");
            let (portfolio_ms, _, portfolio_ok, p_sheds, p_retries) =
                server_batch(handle.addr(), &g_text, n, reps, Engine::Portfolio, budget);
            let (race_ms, race_winners, race_ok, r_sheds, r_retries) =
                server_batch(handle.addr(), &g_text, n, reps, Engine::Race, budget);
            ServerBenchPoint {
                n,
                jobs: reps,
                workers,
                budget_ms: budget.timeout_ms,
                budget_solver_steps: budget.max_solver_steps,
                portfolio_ms,
                race_ms,
                speedup: portfolio_ms / race_ms,
                race_winners,
                sheds: p_sheds + r_sheds,
                retries: p_retries + r_retries,
                verdicts_ok: portfolio_ok && race_ok,
            }
        })
        .collect();
    handle.shutdown();
    points
}

/// One width of the artifact-cache comparison: the same counterflow
/// CSC job decided twice against one [`server::ArtifactCache`] —
/// first cold (the artifact set is built), then warm (the cached set
/// is reused, so the check performs zero unfolding work).
#[derive(Debug, Clone)]
pub struct CacheBenchPoint {
    /// Counterflow width.
    pub n: usize,
    /// Cold check wall-clock, milliseconds (includes unfolding).
    pub cold_ms: f64,
    /// Warm check wall-clock, milliseconds (prefix reused).
    pub warm_ms: f64,
    /// `cold_ms / warm_ms` (> 1 means the cache paid off).
    pub speedup: f64,
    /// Prefix events *built* by the cold run (`None` if the engine
    /// never reached the unfolding stage).
    pub cold_events_built: Option<usize>,
    /// Prefix events *built* by the warm run — `Some(0)` whenever the
    /// cold run completed its prefix.
    pub warm_events_built: Option<usize>,
    /// Whether both runs returned the same, conclusive verdict.
    pub verdicts_ok: bool,
}

/// Runs the artifact-cache comparison over counterflow `widths` at
/// fixed `depth`: every width's CSC check is run cold (artifact set
/// freshly built and cached) and then warm (set fetched back from the
/// cache), both with the unfolding + IP engine under `budget`.
///
/// # Panics
///
/// Panics if a warm run whose cold counterpart completed reports any
/// unfolding work — that would mean the cache failed to share the
/// prefix.
pub fn run_cache_bench(widths: &[usize], depth: usize, budget: &Budget) -> Vec<CacheBenchPoint> {
    let cache = server::ArtifactCache::new(widths.len().max(1));
    widths
        .iter()
        .map(|&w| {
            let stg = counterflow_sym(w, depth);
            let run = |label: &str| {
                let (artifacts, _) = cache.get_or_insert(&stg);
                let t0 = Instant::now();
                let run = CheckRequest::new(&stg, Property::Csc)
                    .engine(Engine::UnfoldingIlp)
                    .budget(budget.clone())
                    .artifacts(&artifacts)
                    .run()
                    .unwrap_or_else(|e| panic!("cf({w},{depth}) {label} check failed: {e}"));
                (t0.elapsed().as_secs_f64() * 1e3, run)
            };
            let (cold_ms, cold) = run("cold");
            let (warm_ms, warm) = run("warm");
            if cold.verdict.holds() == Some(true) {
                assert_eq!(
                    warm.report.prefix_events_built,
                    Some(0),
                    "warm check of cf({w},{depth}) must reuse the cached prefix"
                );
            }
            CacheBenchPoint {
                n: w,
                cold_ms,
                warm_ms,
                speedup: cold_ms / warm_ms,
                cold_events_built: cold.report.prefix_events_built,
                warm_events_built: warm.report.prefix_events_built,
                verdicts_ok: cold.verdict.holds() == Some(true)
                    && warm.verdict.holds() == Some(true),
            }
        })
        .collect()
}

/// One width of the BDD memory-management comparison: the symbolic
/// CSC analysis of a counterflow controller run twice — once with the
/// managed BDD engine (mark-and-sweep GC plus automatic sifting
/// reordering, the default) and once with both knobs off — so the
/// peak-live-node reduction bought by the manager is measurable.
#[derive(Debug, Clone)]
pub struct BddBenchPoint {
    /// Counterflow width.
    pub n: usize,
    /// Reachable states (sanity: both runs must agree; `None` when
    /// the managed run aborted).
    pub states: Option<f64>,
    /// Peak live BDD nodes with GC + auto-reorder on (`None` on
    /// abort).
    pub managed_peak: Option<usize>,
    /// Peak live BDD nodes with GC + auto-reorder off (`None` on
    /// abort).
    pub unmanaged_peak: Option<usize>,
    /// `unmanaged_peak / managed_peak` (> 1 means the manager paid
    /// off); `None` unless both runs completed.
    pub reduction: Option<f64>,
    /// Mark-and-sweep collections of the managed run.
    pub gc_runs: usize,
    /// Sifting passes of the managed run.
    pub reorder_passes: usize,
    /// `"completed"`, or `"aborted: <reason>"` for the managed run.
    pub managed_outcome: String,
    /// `"completed"`, or `"aborted: <reason>"` for the unmanaged run.
    pub unmanaged_outcome: String,
    /// Whether both completed runs agreed on state count, conflict
    /// counts and (absence of) witnesses. Counterflow is
    /// conflict-free, so both witness decoders must return `None`.
    pub verdicts_ok: bool,
}

/// Runs the BDD memory-management comparison over counterflow
/// `widths` at fixed `depth`: each width's symbolic CSC analysis is
/// run with the managed engine (GC + auto-reorder) and with both off,
/// under the same `budget` (fresh guard per run). Verdicts and
/// witnesses must be identical — the manager changes memory
/// behaviour, never answers.
pub fn run_bdd_bench(widths: &[usize], depth: usize, budget: &Budget) -> Vec<BddBenchPoint> {
    widths
        .iter()
        .map(|&w| {
            let stg = counterflow_sym(w, depth);
            let run = |options: SymbolicOptions| {
                let mut checker = SymbolicChecker::with_options(&stg, options);
                let sym_budget = SymbolicBudget {
                    guard: budget.guard(),
                    max_nodes: Some(budget.max_bdd_nodes.unwrap_or(BDD_BENCH_NODE_ALLOWANCE)),
                };
                let report = checker.try_analyse(&sym_budget);
                let usc_witness = checker.usc_witness();
                let csc_witness = checker.csc_witness();
                let stats = checker.bdd_stats();
                (report, usc_witness, csc_witness, stats)
            };
            let (m_report, m_usc, m_csc, m_stats) = run(SymbolicOptions::default());
            let (u_report, u_usc, u_csc, _u_stats) = run(SymbolicOptions {
                gc: false,
                auto_reorder: false,
                ..SymbolicOptions::default()
            });
            let outcome = |r: &Result<symbolic::SymbolicReport, symbolic::SymbolicStop>| match r {
                Ok(_) => "completed".to_owned(),
                Err(stop) => format!("aborted: {stop}"),
            };
            let verdicts_ok = match (&m_report, &u_report) {
                (Ok(m), Ok(u)) => {
                    m.num_states == u.num_states
                        && m.usc_pairs == u.usc_pairs
                        && m.csc_pairs == u.csc_pairs
                        && m_usc == u_usc
                        && m_csc == u_csc
                }
                // An aborted run is inconclusive, not a mismatch.
                _ => true,
            };
            let managed_peak = m_report.as_ref().ok().map(|r| r.bdd_nodes);
            let unmanaged_peak = u_report.as_ref().ok().map(|r| r.bdd_nodes);
            BddBenchPoint {
                n: w,
                states: m_report.as_ref().ok().map(|r| r.num_states),
                managed_peak,
                unmanaged_peak,
                reduction: match (managed_peak, unmanaged_peak) {
                    (Some(m), Some(u)) if m > 0 => Some(u as f64 / m as f64),
                    _ => None,
                },
                gc_runs: m_stats.gc_runs,
                reorder_passes: m_stats.reorder_passes,
                managed_outcome: outcome(&m_report),
                unmanaged_outcome: outcome(&u_report),
                verdicts_ok,
            }
        })
        .collect()
}

/// One width of the parallel possible-extensions comparison: the
/// counterflow prefix built serially and with a worker pool, the
/// wall-clock of both builds, and a structural identity check — the
/// concurrent-discovery/sequential-commit protocol guarantees the two
/// prefixes are bit-identical, so `identical` must always hold.
#[derive(Debug, Clone)]
pub struct UnfoldBenchPoint {
    /// Counterflow width.
    pub n: usize,
    /// Discovery workers of the parallel build (the serial build
    /// always uses 1).
    pub unfold_threads: usize,
    /// Serial prefix construction wall-clock, milliseconds.
    pub serial_ms: f64,
    /// Parallel prefix construction wall-clock, milliseconds. On a
    /// single-CPU host this is typically *slower* than serial (the
    /// pool adds channel and guard traffic without adding cores);
    /// the honest ratio is the point of recording it.
    pub parallel_ms: f64,
    /// `serial_ms / parallel_ms` (> 1 means the pool paid off).
    pub speedup: f64,
    /// Prefix events (identical between the builds).
    pub events: usize,
    /// Extension candidates the parallel build's workers discovered.
    pub pe_discovered: u64,
    /// Whether the two prefixes are event-for-event identical
    /// (transitions, adequate-order keys, cut-off flags).
    pub identical: bool,
}

/// Runs the parallel-unfolding comparison over counterflow `widths`
/// at fixed `depth`: each width's prefix is built with one discovery
/// worker and with `threads` workers, and the two prefixes are
/// checked event-for-event identical.
pub fn run_unfold_bench(widths: &[usize], depth: usize, threads: usize) -> Vec<UnfoldBenchPoint> {
    widths
        .iter()
        .map(|&w| {
            let stg = counterflow_sym(w, depth);
            let build = |threads: usize| {
                let t0 = Instant::now();
                let prefix = unfolding::Prefix::of_stg(
                    &stg,
                    unfolding::UnfoldOptions::new().threads(threads),
                )
                .unwrap_or_else(|e| panic!("cf({w},{depth}) failed to unfold: {e}"));
                (t0.elapsed().as_secs_f64() * 1e3, prefix)
            };
            let (serial_ms, serial) = build(1);
            let (parallel_ms, parallel) = build(threads);
            let identical = serial.num_events() == parallel.num_events()
                && serial.num_conditions() == parallel.num_conditions()
                && serial.events().all(|e| {
                    serial.event_transition(e) == parallel.event_transition(e)
                        && serial.order_key(e) == parallel.order_key(e)
                        && serial.is_cutoff(e) == parallel.is_cutoff(e)
                });
            UnfoldBenchPoint {
                n: w,
                unfold_threads: threads,
                serial_ms,
                parallel_ms,
                speedup: serial_ms / parallel_ms,
                events: serial.num_events(),
                pe_discovered: parallel.unfold_stats().pe_discovered,
                identical,
            }
        })
        .collect()
}

pub mod json {
    //! Hand-rolled JSON emission for the harness artefacts
    //! (`table1.json`, `scale.json`). The build environment has no
    //! registry access, so the harness serialises its two flat row
    //! types directly instead of depending on serde.

    use std::fmt::Write;

    /// Escapes `s` as the contents of a JSON string literal.
    pub fn escape(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
        out
    }

    /// A single JSON object rendered as `"key": value` members.
    #[derive(Debug, Default)]
    pub struct Object {
        members: Vec<String>,
    }

    impl Object {
        /// An empty object.
        pub fn new() -> Self {
            Object::default()
        }

        /// Adds a string member.
        pub fn string(&mut self, key: &str, value: &str) -> &mut Self {
            self.members
                .push(format!("\"{}\": \"{}\"", escape(key), escape(value)));
            self
        }

        /// Adds a numeric member (any Display-able number).
        pub fn number(&mut self, key: &str, value: impl std::fmt::Display) -> &mut Self {
            self.members.push(format!("\"{}\": {}", escape(key), value));
            self
        }

        /// Adds a float member, mapping non-finite values to `null`.
        pub fn float(&mut self, key: &str, value: f64) -> &mut Self {
            if value.is_finite() {
                self.members.push(format!("\"{}\": {}", escape(key), value));
            } else {
                self.members.push(format!("\"{}\": null", escape(key)));
            }
            self
        }

        /// Adds a boolean member.
        pub fn boolean(&mut self, key: &str, value: bool) -> &mut Self {
            self.members.push(format!("\"{}\": {}", escape(key), value));
            self
        }

        /// Adds an explicit `null` member.
        pub fn null(&mut self, key: &str) -> &mut Self {
            self.members.push(format!("\"{}\": null", escape(key)));
            self
        }

        /// Adds an optional numeric member (`null` when `None`).
        pub fn opt_number(
            &mut self,
            key: &str,
            value: Option<impl std::fmt::Display>,
        ) -> &mut Self {
            match value {
                Some(v) => self.number(key, v),
                None => self.null(key),
            }
        }

        /// Adds an optional float member (`null` when `None` or
        /// non-finite).
        pub fn opt_float(&mut self, key: &str, value: Option<f64>) -> &mut Self {
            match value {
                Some(v) => self.float(key, v),
                None => self.null(key),
            }
        }

        /// Adds an optional boolean member (`null` when `None`).
        pub fn opt_boolean(&mut self, key: &str, value: Option<bool>) -> &mut Self {
            match value {
                Some(v) => self.boolean(key, v),
                None => self.null(key),
            }
        }

        /// Renders the object with the given indent level (two
        /// spaces per level), pretty-printed like `serde_json`.
        pub fn render(&self, indent: usize) -> String {
            if self.members.is_empty() {
                return "{}".to_owned();
            }
            let pad = "  ".repeat(indent + 1);
            let close = "  ".repeat(indent);
            let body = self
                .members
                .iter()
                .map(|m| format!("{pad}{m}"))
                .collect::<Vec<_>>()
                .join(",\n");
            format!("{{\n{body}\n{close}}}")
        }
    }

    /// Renders a top-level JSON array of objects.
    pub fn array(objects: &[Object]) -> String {
        if objects.is_empty() {
            return "[]".to_owned();
        }
        let body = objects
            .iter()
            .map(|o| format!("  {}", o.render(1)))
            .collect::<Vec<_>>()
            .join(",\n");
        format!("[\n{body}\n]")
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn escapes_specials() {
            assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
            assert_eq!(escape("\u{1}"), "\\u0001");
        }

        #[test]
        fn renders_members_and_nulls() {
            let mut o = Object::new();
            o.string("name", "x").number("n", 3).boolean("ok", true);
            o.opt_float("t", None);
            let text = array(std::slice::from_ref(&o));
            assert!(text.contains("\"name\": \"x\""));
            assert!(text.contains("\"n\": 3"));
            assert!(text.contains("\"ok\": true"));
            assert!(text.contains("\"t\": null"));
            assert!(text.starts_with("[\n") && text.ends_with("\n]"));
        }

        #[test]
        fn empty_collections_render() {
            assert_eq!(array(&[]), "[]");
            assert_eq!(Object::new().render(0), "{}");
        }
    }
}

/// Serialises Table 1 rows as a pretty-printed JSON array.
pub fn table_to_json(rows: &[TableRow]) -> String {
    let objects: Vec<json::Object> = rows
        .iter()
        .map(|r| {
            let mut o = json::Object::new();
            o.string("name", &r.name)
                .number("s", r.s)
                .number("t", r.t)
                .number("z", r.z)
                .opt_number("b", r.b)
                .opt_number("e", r.e)
                .opt_number("e_cut", r.e_cut)
                .opt_float("states", r.states)
                .float("pfy_ms", r.pfy_ms)
                .float("clp_ms", r.clp_ms)
                .string("pfy_outcome", &r.pfy_outcome)
                .string("clp_outcome", &r.clp_outcome)
                .number("bdd_nodes", r.bdd_nodes)
                .opt_number("solver_steps", r.solver_steps)
                .opt_boolean("csc", r.csc)
                .float("lint_ms", r.lint_ms)
                .string("class", &r.class)
                .float("structure_ms", r.structure_ms)
                .boolean("lint_proved", r.lint_proved)
                .float("cegar_ms", r.cegar_ms)
                .string("cegar_verdict", &r.cegar_verdict)
                .string("resolve_outcome", &r.resolve_outcome)
                .opt_number("resolve_signals", r.resolve_signals)
                .float("resolve_ms", r.resolve_ms)
                .opt_number("resolve_verify_cold_events", r.resolve_verify_cold_events)
                .opt_number("resolve_verify_warm_events", r.resolve_verify_warm_events)
                .boolean("verdicts_ok", r.verdicts_ok);
            o
        })
        .collect();
    json::array(&objects)
}

/// Serialises server-bench points as a pretty-printed JSON array.
pub fn server_bench_to_json(points: &[ServerBenchPoint]) -> String {
    let objects: Vec<json::Object> = points
        .iter()
        .map(|p| {
            let winners = p
                .race_winners
                .iter()
                .map(|(name, count)| format!("{name}:{count}"))
                .collect::<Vec<_>>()
                .join(",");
            let mut o = json::Object::new();
            o.number("n", p.n)
                .number("jobs", p.jobs)
                .number("workers", p.workers)
                .opt_number("budget_ms", p.budget_ms)
                .opt_number("budget_solver_steps", p.budget_solver_steps)
                .float("portfolio_ms", p.portfolio_ms)
                .float("race_ms", p.race_ms)
                .float("speedup", p.speedup)
                .string("race_winners", &winners)
                .number("sheds", p.sheds)
                .number("retries", p.retries)
                .boolean("verdicts_ok", p.verdicts_ok);
            o
        })
        .collect();
    json::array(&objects)
}

/// Serialises cache-bench points as a pretty-printed JSON array.
pub fn cache_bench_to_json(points: &[CacheBenchPoint]) -> String {
    let objects: Vec<json::Object> = points
        .iter()
        .map(|p| {
            let mut o = json::Object::new();
            o.number("n", p.n)
                .float("cold_ms", p.cold_ms)
                .float("warm_ms", p.warm_ms)
                .float("speedup", p.speedup)
                .opt_number("cold_events_built", p.cold_events_built)
                .opt_number("warm_events_built", p.warm_events_built)
                .boolean("verdicts_ok", p.verdicts_ok);
            o
        })
        .collect();
    json::array(&objects)
}

/// Serialises BDD-bench points as a pretty-printed JSON array.
pub fn bdd_bench_to_json(points: &[BddBenchPoint]) -> String {
    let objects: Vec<json::Object> = points
        .iter()
        .map(|p| {
            let mut o = json::Object::new();
            o.number("n", p.n)
                .opt_float("states", p.states)
                .opt_number("managed_peak", p.managed_peak)
                .opt_number("unmanaged_peak", p.unmanaged_peak)
                .opt_float("reduction", p.reduction)
                .number("gc_runs", p.gc_runs)
                .number("reorder_passes", p.reorder_passes)
                .string("managed_outcome", &p.managed_outcome)
                .string("unmanaged_outcome", &p.unmanaged_outcome)
                .boolean("verdicts_ok", p.verdicts_ok);
            o
        })
        .collect();
    json::array(&objects)
}

/// Serialises unfold-bench points as a pretty-printed JSON array.
pub fn unfold_bench_to_json(points: &[UnfoldBenchPoint]) -> String {
    let objects: Vec<json::Object> = points
        .iter()
        .map(|p| {
            let mut o = json::Object::new();
            o.number("n", p.n)
                .number("unfold_threads", p.unfold_threads)
                .float("serial_ms", p.serial_ms)
                .float("parallel_ms", p.parallel_ms)
                .float("speedup", p.speedup)
                .number("events", p.events)
                .number("pe_discovered", p.pe_discovered as usize)
                .boolean("identical", p.identical);
            o
        })
        .collect();
    json::array(&objects)
}

/// Renders the full `scale.json` artifact: the sweep under `"sweep"`,
/// plus — when they ran — the server-bench comparison under
/// `"server_bench"`, the artifact-cache comparison under
/// `"cache_bench"`, the BDD memory-management comparison under
/// `"bdd_bench"` and the parallel-unfolding comparison under
/// `"unfold_bench"`.
pub fn scale_artifact_json(
    points: &[ScalePoint],
    server_bench: &[ServerBenchPoint],
    cache_bench: &[CacheBenchPoint],
    bdd_bench: &[BddBenchPoint],
    unfold_bench: &[UnfoldBenchPoint],
) -> String {
    let indent = |text: String| text.replace('\n', "\n  ");
    let mut out = String::from("{\n  \"sweep\": ");
    out.push_str(&indent(scale_to_json(points)));
    if !server_bench.is_empty() {
        out.push_str(",\n  \"server_bench\": ");
        out.push_str(&indent(server_bench_to_json(server_bench)));
    }
    if !cache_bench.is_empty() {
        out.push_str(",\n  \"cache_bench\": ");
        out.push_str(&indent(cache_bench_to_json(cache_bench)));
    }
    if !bdd_bench.is_empty() {
        out.push_str(",\n  \"bdd_bench\": ");
        out.push_str(&indent(bdd_bench_to_json(bdd_bench)));
    }
    if !unfold_bench.is_empty() {
        out.push_str(",\n  \"unfold_bench\": ");
        out.push_str(&indent(unfold_bench_to_json(unfold_bench)));
    }
    out.push_str("\n}");
    out
}

/// Serialises scale-sweep points as a pretty-printed JSON array.
pub fn scale_to_json(points: &[ScalePoint]) -> String {
    let objects: Vec<json::Object> = points
        .iter()
        .map(|p| {
            let mut o = json::Object::new();
            o.number("n", p.n);
            o.opt_number("states", p.states);
            o.opt_number("events", p.events)
                .opt_number("conditions", p.conditions);
            o.opt_float("explicit_ms", p.explicit_ms);
            o.float("clp_ms", p.clp_ms);
            o.string("clp_outcome", &p.clp_outcome);
            o.float("cegar_ms", p.cegar_ms);
            o.string("cegar_verdict", &p.cegar_verdict);
            o
        })
        .collect();
    json::array(&objects)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_has_the_fifteen_rows() {
        let ms = models();
        assert_eq!(ms.len(), 15);
        let conflicted = ms.iter().filter(|m| !m.expect_csc).count();
        assert_eq!(conflicted, 9, "top half of the table has conflicts");
    }

    #[test]
    fn rows_measure_consistently() {
        // One small model from each half.
        for model in models()
            .into_iter()
            .filter(|m| m.name == "DUP-4PH-A" || m.name == "CF-SYM-D-CSC")
        {
            let row = run_row(&model, &Budget::unlimited());
            assert!(row.verdicts_ok, "{}", row.name);
            assert!(row.e.unwrap() > 0 && row.b.unwrap() > 0);
            assert_eq!(row.csc, Some(model.expect_csc));
            assert_eq!(row.pfy_outcome, "completed");
            assert_eq!(row.clp_outcome, "completed");
            // The static LP proof decides exactly the conflict-free
            // half of the roster, with no exploration at all.
            assert_eq!(row.lint_proved, model.expect_csc, "{}", row.name);
            // Every roster model belongs to a detected class.
            assert!(!row.class.is_empty(), "{}", row.name);
        }
    }

    #[test]
    fn exhausted_rows_record_the_abort_instead_of_crashing() {
        let model = &models()[0]; // LAZYRING
        let budget = Budget::unlimited()
            .with_max_events(3)
            .with_max_bdd_nodes(16);
        let row = run_row(model, &budget);
        assert!(
            row.pfy_outcome.starts_with("aborted:"),
            "{}",
            row.pfy_outcome
        );
        assert!(
            row.clp_outcome.starts_with("aborted:"),
            "{}",
            row.clp_outcome
        );
        assert_eq!(row.csc, None);
        assert!(row.verdicts_ok, "inconclusive is not a mismatch");
        assert!(row.bdd_nodes > 0, "partial symbolic work is reported");
        let json = table_to_json(std::slice::from_ref(&row));
        assert!(json.contains("\"clp_outcome\": \"aborted:"));
        assert!(json.contains("\"e\": null"));
        // The structure pass runs before either engine, so its
        // columns survive an exhausted budget.
        assert!(json.contains("\"class\": \""));
        assert!(json.contains("\"structure_ms\":"));
    }

    #[test]
    fn resolve_columns_pin_warm_reverification_under_cold() {
        // The incremental-reverification claim lives in the artifact:
        // a conflicted row resolves, the warm re-check of the repaired
        // net rebuilds zero prefix events, and the cold-from-scratch
        // re-check rebuilds a real prefix.
        let model = models()
            .into_iter()
            .find(|m| m.name == "DUP-4PH-A")
            .unwrap();
        let row = run_row(&model, &Budget::unlimited());
        assert_eq!(row.resolve_outcome, "resolved");
        assert!(row.resolve_signals.unwrap() >= 1);
        assert!(row.resolve_ms > 0.0);
        assert_eq!(row.resolve_verify_warm_events, Some(0), "warm reuses");
        assert!(row.resolve_verify_cold_events.unwrap() > 0, "cold builds");
        assert!(row.verdicts_ok);
        let json = table_to_json(std::slice::from_ref(&row));
        assert!(json.contains("\"resolve_outcome\": \"resolved\""));
        assert!(json.contains("\"resolve_verify_warm_events\": 0"));
        // Conflict-free rows have nothing to resolve and say so.
        let cf = models()
            .into_iter()
            .find(|m| m.name == "CF-SYM-D-CSC")
            .unwrap();
        let cf_row = run_row(&cf, &Budget::unlimited());
        assert_eq!(cf_row.resolve_outcome, "-");
        assert_eq!(cf_row.resolve_signals, None);
    }

    #[test]
    fn table_formatting_contains_all_rows() {
        let model = &models()[2];
        let row = run_row(model, &Budget::unlimited());
        let text = format_table(std::slice::from_ref(&row));
        assert!(text.contains("DUP-4PH-A"));
        assert!(text.contains("Pfy[ms]"));
    }

    #[test]
    fn cache_bench_warm_runs_do_no_unfolding_work() {
        let points = run_cache_bench(&[1, 2], 2, &Budget::unlimited());
        assert_eq!(points.len(), 2);
        for p in &points {
            assert!(p.verdicts_ok, "cf({},2) must hold CSC both ways", p.n);
            assert!(p.cold_events_built.unwrap() > 0, "cold run builds");
            assert_eq!(p.warm_events_built, Some(0), "warm run reuses");
        }
        let json = cache_bench_to_json(&points);
        assert!(json.contains("\"warm_events_built\": 0"));
    }

    #[test]
    fn unfold_bench_parallel_prefixes_are_identical() {
        let points = run_unfold_bench(&[1, 2], 2, 2);
        assert_eq!(points.len(), 2);
        for p in &points {
            assert!(p.identical, "cf({},2) parallel prefix diverged", p.n);
            assert_eq!(p.unfold_threads, 2);
            assert!(p.events > 0);
            assert!(p.pe_discovered > 0);
        }
        let json = unfold_bench_to_json(&points);
        assert!(json.contains("\"identical\": true"));
        assert!(json.contains("\"unfold_threads\": 2"));
    }

    #[test]
    fn bdd_bench_manages_memory_without_changing_answers() {
        let points = run_bdd_bench(&[2, 3], 2, &Budget::unlimited());
        assert_eq!(points.len(), 2);
        for p in &points {
            assert!(p.verdicts_ok, "cf({},2) managed/unmanaged mismatch", p.n);
            assert_eq!(p.managed_outcome, "completed");
            assert_eq!(p.unmanaged_outcome, "completed");
            assert!(
                p.managed_peak.unwrap() <= p.unmanaged_peak.unwrap(),
                "the manager must never make the peak worse: {p:?}"
            );
        }
        let widest = points.last().unwrap();
        assert!(
            widest.gc_runs > 0,
            "the widest instance must trigger collections: {widest:?}"
        );
        let json = bdd_bench_to_json(&points);
        assert!(json.contains("\"managed_peak\""));
        assert!(json.contains("\"gc_runs\""));
    }

    #[test]
    fn scale_sweep_produces_monotone_prefixes() {
        let points = run_scale(&[1, 2, 3], 100_000, &Budget::unlimited());
        assert_eq!(points.len(), 3);
        assert!(points.iter().all(|p| p.clp_outcome == "completed"));
        assert!(points.windows(2).all(|w| w[0].events <= w[1].events));
    }
}
