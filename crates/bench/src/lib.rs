//! Benchmark harness regenerating the paper's evaluation.
//!
//! The roster in [`models`] mirrors the 15 rows of Table 1 (DATE
//! 2002): ring protocol adapters, duplex channel controllers and
//! counterflow pipeline controllers, rebuilt parametrically (see
//! DESIGN.md §2 for the substitution rationale). For every model the
//! harness reports the paper's columns:
//!
//! `|S| |T| |Z|` of the STG, `|B| |E| |E_cut|` of its complete
//! prefix, the time of the BDD-based all-conflicts baseline (the
//! paper's `Pfy` column) and the time of the unfolding + integer
//! programming checker (`CLP`).
//!
//! Binaries:
//!
//! * `table1` — prints the table and writes `table1.json`;
//! * `scale`  — the scalability sweep (pipeline width vs state count,
//!   prefix size, engine times).

#![warn(missing_docs)]

use std::time::Instant;

use csc_core::{CheckOutcome, Checker};
use serde::{Deserialize, Serialize};
use stg::gen::counterflow::{counterflow_asym, counterflow_sym};
use stg::gen::duplex::{dup_4ph, dup_mod};
use stg::gen::pipeline::muller_pipeline;
use stg::gen::ring::{eager_ring, lazy_ring};
use stg::Stg;
use symbolic::SymbolicChecker;
use unfolding::{Prefix, UnfoldOptions};

/// A named benchmark instance.
pub struct BenchModel {
    /// Row name, following the paper's Table 1.
    pub name: &'static str,
    /// The generated STG.
    pub stg: Stg,
    /// Expected CSC verdict (`true` = satisfies CSC), used as a
    /// sanity check; the harness re-derives it and flags mismatches.
    pub expect_csc: bool,
}

/// The Table 1 roster. The paper's exact STG files are not archived;
/// the parameters below size each family into the same structural
/// regime (see DESIGN.md). The top half contains coding conflicts,
/// the bottom (CF-*-CSC) half is conflict-free.
pub fn models() -> Vec<BenchModel> {
    vec![
        BenchModel {
            name: "LAZYRING",
            stg: lazy_ring(4),
            expect_csc: false,
        },
        BenchModel {
            name: "RING",
            stg: eager_ring(4),
            expect_csc: false,
        },
        BenchModel {
            name: "DUP-4PH-A",
            stg: dup_4ph(1, false),
            expect_csc: false,
        },
        BenchModel {
            name: "DUP-4PH-B",
            stg: dup_4ph(2, false),
            expect_csc: false,
        },
        BenchModel {
            name: "DUP-4PH-MTR-A",
            stg: dup_4ph(3, false),
            expect_csc: false,
        },
        BenchModel {
            name: "DUP-4PH-MTR-B",
            stg: dup_4ph(4, false),
            expect_csc: false,
        },
        BenchModel {
            name: "DUP-MOD-A",
            stg: dup_mod(2),
            expect_csc: false,
        },
        BenchModel {
            name: "DUP-MOD-B",
            stg: dup_mod(4),
            expect_csc: false,
        },
        BenchModel {
            name: "DUP-MOD-C",
            stg: dup_mod(6),
            expect_csc: false,
        },
        BenchModel {
            name: "CF-SYM-A-CSC",
            stg: counterflow_sym(2, 3),
            expect_csc: true,
        },
        BenchModel {
            name: "CF-SYM-B-CSC",
            stg: counterflow_sym(3, 3),
            expect_csc: true,
        },
        BenchModel {
            name: "CF-SYM-C-CSC",
            stg: counterflow_sym(2, 5),
            expect_csc: true,
        },
        BenchModel {
            name: "CF-SYM-D-CSC",
            stg: counterflow_sym(4, 2),
            expect_csc: true,
        },
        BenchModel {
            name: "CF-ASYM-A-CSC",
            stg: counterflow_asym(3, 2),
            expect_csc: true,
        },
        BenchModel {
            name: "CF-ASYM-B-CSC",
            stg: counterflow_asym(4, 2),
            expect_csc: true,
        },
    ]
}

/// One row of the regenerated Table 1.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TableRow {
    /// Model name.
    pub name: String,
    /// Places of the STG.
    pub s: usize,
    /// Transitions of the STG.
    pub t: usize,
    /// Signals of the STG.
    pub z: usize,
    /// Conditions of the prefix.
    pub b: usize,
    /// Events of the prefix.
    pub e: usize,
    /// Cut-off events of the prefix.
    pub e_cut: usize,
    /// Reachable states (as counted by the symbolic engine).
    pub states: f64,
    /// Symbolic all-conflicts baseline time, milliseconds.
    pub pfy_ms: f64,
    /// Unfolding + IP (first conflict / absence proof) time,
    /// milliseconds.
    pub clp_ms: f64,
    /// Whether CSC holds.
    pub csc: bool,
    /// Whether the verdicts matched the expectation and each other.
    pub verdicts_ok: bool,
}

/// Measures one model end to end.
pub fn run_row(model: &BenchModel) -> TableRow {
    let stg = &model.stg;
    let prefix = Prefix::of_stg(stg, UnfoldOptions::default()).expect("benchmark model unfolds");

    let t0 = Instant::now();
    let mut symbolic = SymbolicChecker::new(stg);
    let report = symbolic.analyse();
    let pfy_ms = t0.elapsed().as_secs_f64() * 1e3;

    let t1 = Instant::now();
    let checker = Checker::new(stg).expect("benchmark model checks");
    let outcome = checker.check_csc().expect("search completes");
    let clp_ms = t1.elapsed().as_secs_f64() * 1e3;

    let csc = matches!(outcome, CheckOutcome::Satisfied);
    TableRow {
        name: model.name.to_owned(),
        s: stg.net().num_places(),
        t: stg.net().num_transitions(),
        z: stg.num_signals(),
        b: prefix.num_conditions(),
        e: prefix.num_events(),
        e_cut: prefix.num_cutoffs(),
        states: report.num_states,
        pfy_ms,
        clp_ms,
        csc,
        verdicts_ok: csc == model.expect_csc && report.satisfies_csc() == csc,
    }
}

/// Formats rows as an aligned text table in the paper's column
/// order.
pub fn format_table(rows: &[TableRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<16} {:>4} {:>4} {:>3} | {:>5} {:>5} {:>4} | {:>8} | {:>9} {:>9} | {:>4} {:>3}\n",
        "Problem", "S", "T", "Z", "B", "E", "Ecut", "states", "Pfy[ms]", "CLP[ms]", "CSC", "ok"
    ));
    out.push_str(&"-".repeat(100));
    out.push('\n');
    for r in rows {
        out.push_str(&format!(
            "{:<16} {:>4} {:>4} {:>3} | {:>5} {:>5} {:>4} | {:>8.0} | {:>9.2} {:>9.2} | {:>4} {:>3}\n",
            r.name,
            r.s,
            r.t,
            r.z,
            r.b,
            r.e,
            r.e_cut,
            r.states,
            r.pfy_ms,
            r.clp_ms,
            if r.csc { "yes" } else { "no" },
            if r.verdicts_ok { "ok" } else { "BAD" },
        ));
    }
    out
}

/// One point of the scalability sweep (the "figure" series).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScalePoint {
    /// Pipeline stages.
    pub n: usize,
    /// Reachable states (explicit; `None` if over the cap).
    pub states: Option<usize>,
    /// Prefix events.
    pub events: usize,
    /// Prefix conditions.
    pub conditions: usize,
    /// Explicit state-graph CSC check time, ms (`None` if skipped).
    pub explicit_ms: Option<f64>,
    /// Unfolding + IP CSC check time, ms.
    pub clp_ms: f64,
}

/// Runs the pipeline scalability sweep for `stages`, capping explicit
/// exploration at `explicit_cap` states.
pub fn run_scale(stages: &[usize], explicit_cap: usize) -> Vec<ScalePoint> {
    stages
        .iter()
        .map(|&n| {
            let stg = muller_pipeline(n);
            let prefix =
                Prefix::of_stg(&stg, UnfoldOptions::default()).expect("pipeline unfolds");
            let limits = petri::ExploreLimits {
                max_states: explicit_cap,
                token_bound: 1,
            };
            let t0 = Instant::now();
            let explicit = stg::StateGraph::build(&stg, limits).ok();
            let explicit_ms = explicit
                .as_ref()
                .map(|sg| {
                    let _ = sg.csc_conflict_pairs(&stg);
                    t0.elapsed().as_secs_f64() * 1e3
                });
            let t1 = Instant::now();
            let checker = Checker::new(&stg).expect("pipeline checks");
            let _ = checker.check_csc().expect("search completes");
            let clp_ms = t1.elapsed().as_secs_f64() * 1e3;
            ScalePoint {
                n,
                states: explicit.as_ref().map(|sg| sg.num_states()),
                events: prefix.num_events(),
                conditions: prefix.num_conditions(),
                explicit_ms,
                clp_ms,
            }
        })
        .collect()
}

/// Runs the conflict-free absence-proof sweep: counterflow
/// controllers of growing `width` at fixed `depth` — the hard half of
/// the workload, where the IP engine must exhaust its search space.
pub fn run_scale_counterflow(widths: &[usize], depth: usize, explicit_cap: usize) -> Vec<ScalePoint> {
    widths
        .iter()
        .map(|&w| {
            let stg = counterflow_sym(w, depth);
            let prefix =
                Prefix::of_stg(&stg, UnfoldOptions::default()).expect("counterflow unfolds");
            let limits = petri::ExploreLimits {
                max_states: explicit_cap,
                token_bound: 1,
            };
            let t0 = Instant::now();
            let explicit = stg::StateGraph::build(&stg, limits).ok();
            let explicit_ms = explicit.as_ref().map(|sg| {
                let _ = sg.csc_conflict_pairs(&stg);
                t0.elapsed().as_secs_f64() * 1e3
            });
            let t1 = Instant::now();
            let checker = Checker::new(&stg).expect("counterflow checks");
            let outcome = checker.check_csc().expect("search completes");
            assert!(
                matches!(outcome, CheckOutcome::Satisfied),
                "counterflow is conflict-free by construction"
            );
            let clp_ms = t1.elapsed().as_secs_f64() * 1e3;
            ScalePoint {
                n: w,
                states: explicit.as_ref().map(|sg| sg.num_states()),
                events: prefix.num_events(),
                conditions: prefix.num_conditions(),
                explicit_ms,
                clp_ms,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_has_the_fifteen_rows() {
        let ms = models();
        assert_eq!(ms.len(), 15);
        let conflicted = ms.iter().filter(|m| !m.expect_csc).count();
        assert_eq!(conflicted, 9, "top half of the table has conflicts");
    }

    #[test]
    fn rows_measure_consistently() {
        // One small model from each half.
        for model in models()
            .into_iter()
            .filter(|m| m.name == "DUP-4PH-A" || m.name == "CF-SYM-D-CSC")
        {
            let row = run_row(&model);
            assert!(row.verdicts_ok, "{}", row.name);
            assert!(row.e > 0 && row.b > 0);
            assert_eq!(row.csc, model.expect_csc);
        }
    }

    #[test]
    fn table_formatting_contains_all_rows() {
        let model = &models()[2];
        let row = run_row(model);
        let text = format_table(std::slice::from_ref(&row));
        assert!(text.contains("DUP-4PH-A"));
        assert!(text.contains("Pfy[ms]"));
    }

    #[test]
    fn scale_sweep_produces_monotone_prefixes() {
        let points = run_scale(&[1, 2, 3], 100_000);
        assert_eq!(points.len(), 3);
        assert!(points.windows(2).all(|w| w[0].events <= w[1].events));
    }
}
