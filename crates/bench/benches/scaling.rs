//! Scalability benches: Muller pipelines of growing depth, comparing
//! prefix construction + IP check against explicit state-graph
//! analysis (whose cost tracks the exponential state count).

// The criterion_group! macro expands to an undocumented fn, which
// trips the workspace-level missing_docs warn.
#![allow(missing_docs)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use csc_core::Checker;
use stg::gen::pipeline::muller_pipeline;
use stg::StateGraph;

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling");
    group.sample_size(10);
    for n in [2usize, 4, 6] {
        let stg = muller_pipeline(n);
        group.bench_with_input(BenchmarkId::new("unfolding_ilp", n), &stg, |b, stg| {
            b.iter(|| {
                let checker = Checker::new(black_box(stg)).expect("pipeline checks");
                black_box(checker.check_csc().expect("search completes"))
            })
        });
        group.bench_with_input(BenchmarkId::new("explicit_sg", n), &stg, |b, stg| {
            b.iter(|| {
                let sg = StateGraph::build(black_box(stg), Default::default())
                    .expect("pipeline explores");
                black_box(sg.csc_conflict_pairs(stg))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
