//! Ablation benches for the design choices called out in DESIGN.md:
//!
//! * closure propagation vs explicit compatibility constraints (the
//!   paper's motivation: generic IP solvers "need too much time");
//! * the §7 conflict-free subset optimisation on/off;
//! * McMillan vs ERV adequate order (prefix size/time).

// The criterion_group! macro expands to an undocumented fn, which
// trips the workspace-level missing_docs warn.
#![allow(missing_docs)]

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use csc_core::{Checker, CheckerOptions};
use stg::gen::counterflow::counterflow_sym;
use stg::gen::vme::vme_read;
use unfolding::{OrderStrategy, Prefix, UnfoldOptions};

fn bench_closure_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_closure");
    group.sample_size(10);
    let stg = vme_read();
    group.bench_function("with_closure", |b| {
        b.iter(|| {
            let checker = Checker::new(black_box(&stg)).expect("checks");
            black_box(checker.check_csc().expect("completes"))
        })
    });
    group.bench_function("generic_ip", |b| {
        b.iter(|| {
            let mut options = CheckerOptions::default();
            options.solver.use_closure = false;
            options.compatibility_constraints = true;
            let checker = Checker::with_options(black_box(&stg), options).expect("checks");
            black_box(checker.check_csc().expect("completes"))
        })
    });
    group.finish();
}

fn bench_conflict_free_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_cf_opt");
    group.sample_size(10);
    // A conflict-free (marked-graph-like) model where Prop. 1 applies:
    // absence proofs must exhaust the space, so the restriction to
    // ordered pairs matters most here.
    let stg = counterflow_sym(2, 3);
    for (label, cf_opt) in [("subset_pairs", true), ("all_pairs", false)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let options = CheckerOptions {
                    conflict_free_optimisation: cf_opt,
                    ..Default::default()
                };
                let checker = Checker::with_options(black_box(&stg), options).expect("checks");
                black_box(checker.check_csc().expect("completes"))
            })
        });
    }
    group.finish();
}

fn bench_order_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_order");
    group.sample_size(10);
    let stg = counterflow_sym(3, 3);
    for (label, order) in [
        ("erv_total", OrderStrategy::ErvTotal),
        ("mcmillan", OrderStrategy::McMillan),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let options = UnfoldOptions::new().order(order);
                black_box(Prefix::of_stg(black_box(&stg), options).expect("unfolds"))
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_closure_ablation,
    bench_conflict_free_ablation,
    bench_order_ablation
);
criterion_main!(benches);
