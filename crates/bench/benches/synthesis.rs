//! Benches for the downstream synthesis steps: automatic CSC
//! resolution (step b) and next-state function derivation (step c).

// The criterion_group! macro expands to an undocumented fn, which
// trips the workspace-level missing_docs warn.
#![allow(missing_docs)]

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use resolve::{resolve_csc, ResolverOptions};
use stg::gen::duplex::dup_4ph;
use stg::gen::vme::{vme_read, vme_read_csc_resolved};
use synth::NextStateFunctions;

fn bench_resolution(c: &mut Criterion) {
    let mut group = c.benchmark_group("resolution");
    group.sample_size(10);
    for (label, stg) in [("vme", vme_read()), ("dup_4ph_1", dup_4ph(1, false))] {
        group.bench_function(label, |b| {
            b.iter(|| {
                black_box(resolve_csc(black_box(&stg), ResolverOptions::default()).expect("runs"))
            })
        });
    }
    group.finish();
}

fn bench_equation_derivation(c: &mut Criterion) {
    let mut group = c.benchmark_group("equations");
    group.sample_size(20);
    let stg = vme_read_csc_resolved();
    group.bench_function("vme_resolved", |b| {
        b.iter(|| {
            let mut fns =
                NextStateFunctions::derive(black_box(&stg), Default::default()).expect("derives");
            let signals: Vec<_> = fns.signals().collect();
            for z in signals {
                black_box(fns.equation(z));
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_resolution, bench_equation_derivation);
criterion_main!(benches);
