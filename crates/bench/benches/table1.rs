//! Criterion benches for the Table 1 rows: per model, the unfolding +
//! IP CSC check (`clp`) against the symbolic all-conflicts baseline
//! (`pfy`).

// The criterion_group! macro expands to an undocumented fn, which
// trips the workspace-level missing_docs warn.
#![allow(missing_docs)]

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use bench_harness::models;
use csc_core::Checker;
use symbolic::SymbolicChecker;

/// Models cheap enough for the repeated-sampling symbolic baseline;
/// the `table1` binary still times the full roster once per run.
const PFY_BENCH_MODELS: [&str; 5] = [
    "LAZYRING",
    "DUP-4PH-A",
    "DUP-4PH-B",
    "DUP-MOD-A",
    "CF-SYM-A-CSC",
];

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    for model in models() {
        let stg = &model.stg;
        group.bench_function(format!("clp/{}", model.name), |b| {
            b.iter(|| {
                let checker = Checker::new(black_box(stg)).expect("model checks");
                black_box(checker.check_csc().expect("search completes"))
            })
        });
        if PFY_BENCH_MODELS.contains(&model.name) {
            group.bench_function(format!("pfy/{}", model.name), |b| {
                b.iter(|| {
                    let mut sym = SymbolicChecker::new(black_box(stg));
                    black_box(sym.analyse())
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
