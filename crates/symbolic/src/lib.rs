//! BDD-based symbolic coding-conflict detection — the Petrify-style
//! baseline.
//!
//! The paper's Table 1 compares against Petrify, which builds the
//! STG's reachable state space symbolically (BDDs) and computes the
//! *characteristic function of all CSC conflicts*. This crate
//! reproduces that behaviour on our own [`bdd`] package:
//!
//! 1. encode the joint (marking, code) state of a safe consistent STG
//!    into boolean variables (one current/next pair per place and per
//!    signal, interleaved);
//! 2. build the transition relation as a disjunction of per-
//!    transition relations;
//! 3. compute the reachable set by a breadth-first fixpoint;
//! 4. form the conflict-pair relation
//!    `R(s) ∧ R(s') ∧ Code(s) = Code(s') ∧ M(s) ≠ M(s')`, optionally
//!    conjoined with `Out(s) ≠ Out(s')` for CSC.
//!
//! Unlike the unfolding checker — which stops at the first conflict —
//! this engine always characterises *all* conflicts, preserving the
//! workload asymmetry the paper's timing columns reflect.
//!
//! State sets and relations are held as root-protected [`bdd::Func`]
//! handles, so the manager's mark-and-sweep garbage collector can
//! reclaim intermediate results between fixpoint steps, and Rudell
//! sifting (each bit's current/next pair grouped so the interleaving
//! survives) can shrink the working set mid-traversal. Witnesses are
//! decoded with the order-independent [`bdd::Bdd::first_sat`], so they
//! are bit-identical across GC and reordering configurations.
//!
//! # Examples
//!
//! ```
//! use symbolic::SymbolicChecker;
//! use stg::gen::vme::vme_read;
//!
//! let stg = vme_read();
//! let mut checker = SymbolicChecker::new(&stg);
//! let report = checker.analyse();
//! assert!(report.usc_pairs > 0.0);
//! assert!(report.csc_pairs > 0.0);
//! assert_eq!(report.num_states, 14.0); // read-cycle state graph
//! ```

#![warn(missing_docs)]

use std::error::Error;
use std::fmt;
use std::sync::Arc;

pub use bdd::BddStats;
use bdd::{Bdd, Func};
use petri::{Marking, PlaceId, StopGuard, StopReason};
use stg::{CodeVec, Edge, Label, Signal, Stg};

/// Live-node count at which automatic sifting first kicks in (when
/// [`SymbolicOptions::auto_reorder`] is on).
const AUTO_REORDER_THRESHOLD: usize = 1 << 14;

/// Resource limits of the symbolic engine: a cancellation/deadline
/// guard polled at each fixpoint step, plus a cap on live BDD nodes
/// (the quantity that actually explodes on hard instances).
///
/// The default budget is unlimited, so the fallible `try_*` entry
/// points cannot fail under it.
#[derive(Debug, Clone, Default)]
pub struct SymbolicBudget {
    /// Cooperative stop condition (cancellation flag or wall-clock
    /// deadline).
    pub guard: StopGuard,
    /// Maximum number of live BDD nodes the analysis may hold.
    pub max_nodes: Option<usize>,
}

/// Why a symbolic analysis stopped before completing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SymbolicStop {
    /// The caller's [`StopGuard`] fired.
    Stopped(StopReason),
    /// The BDD grew past [`SymbolicBudget::max_nodes`].
    NodeLimit(usize),
}

impl fmt::Display for SymbolicStop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SymbolicStop::Stopped(reason) => write!(f, "symbolic analysis stopped: {reason}"),
            SymbolicStop::NodeLimit(cap) => {
                write!(
                    f,
                    "symbolic analysis exceeded the budget of {cap} BDD nodes"
                )
            }
        }
    }
}

impl Error for SymbolicStop {}

/// Counts and characteristic functions produced by
/// [`SymbolicChecker::analyse`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SymbolicReport {
    /// Number of reachable (marking, code) states.
    pub num_states: f64,
    /// Number of unordered USC conflict pairs.
    pub usc_pairs: f64,
    /// Number of unordered CSC conflict pairs.
    pub csc_pairs: f64,
    /// Peak live BDD nodes over the analysis.
    pub bdd_nodes: usize,
}

impl SymbolicReport {
    /// Whether the STG satisfies the USC property.
    pub fn satisfies_usc(&self) -> bool {
        self.usc_pairs == 0.0
    }

    /// Whether the STG satisfies the CSC property.
    pub fn satisfies_csc(&self) -> bool {
        self.csc_pairs == 0.0
    }
}

/// A decoded symbolic conflict witness: two distinct reachable states
/// with equal codes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymbolicWitness {
    /// First state's marking.
    pub marking1: Marking,
    /// Second state's marking.
    pub marking2: Marking,
    /// The shared code.
    pub code: CodeVec,
}

/// A decoded normalcy-violation witness (§6): two reachable states
/// with componentwise-ordered codes (`code1 ≤ code2`) whose next-state
/// functions for [`NormalcyPairWitness::signal`] are discordant with
/// that order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NormalcyPairWitness {
    /// The signal whose normalcy the pair violates.
    pub signal: Signal,
    /// The state carrying the smaller code.
    pub marking1: Marking,
    /// The state carrying the larger (or equal) code.
    pub marking2: Marking,
    /// `marking1`'s code.
    pub code1: CodeVec,
    /// `marking2`'s code; componentwise ≥ `code1`.
    pub code2: CodeVec,
    /// `true` for a p-normalcy violation (`Nxt_z` falls along the
    /// code order), `false` for an n-normalcy violation (it rises).
    pub positive: bool,
}

/// Options of the symbolic engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SymbolicOptions {
    /// Apply transition relations one by one to the BFS frontier
    /// (partitioned image) instead of building one monolithic
    /// relation — the standard optimisation; turn off for the
    /// naive-baseline ablation.
    pub partitioned: bool,
    /// Growth-triggered mark-and-sweep garbage collection in the BDD
    /// manager.
    pub gc: bool,
    /// Automatic variable reordering (Rudell sifting with each bit's
    /// current/next pair grouped) once the table outgrows a threshold.
    pub auto_reorder: bool,
    /// Test knob: force a full collection every `n` BDD allocations,
    /// regardless of the dead-node ratio (`None` = off).
    pub gc_every: Option<usize>,
}

impl Default for SymbolicOptions {
    fn default() -> Self {
        SymbolicOptions {
            partitioned: true,
            gc: true,
            auto_reorder: true,
            gc_every: None,
        }
    }
}

/// Symbolic state-space engine for one STG.
///
/// Owns its STG behind an [`Arc`], so a checker built with
/// [`SymbolicChecker::from_shared`] can live inside a shared artifact
/// set and be reused (keeping its cached reachable set and BDD unique
/// tables warm) across calls and threads.
pub struct SymbolicChecker {
    stg: Arc<Stg>,
    bdd: Bdd,
    num_bits: usize,
    reached: Option<Func>,
    options: SymbolicOptions,
}

impl SymbolicChecker {
    /// Prepares the encoder for `stg` (which must be safe and
    /// consistent for the analysis to be meaningful). Clones the STG
    /// into shared ownership; use [`SymbolicChecker::from_shared`] to
    /// avoid the clone.
    pub fn new(stg: &Stg) -> Self {
        Self::with_options(stg, SymbolicOptions::default())
    }

    /// Prepares the encoder with explicit options.
    pub fn with_options(stg: &Stg, options: SymbolicOptions) -> Self {
        Self::from_shared_with_options(Arc::new(stg.clone()), options)
    }

    /// Prepares the encoder over an already-shared STG (default
    /// options) without cloning it.
    pub fn from_shared(stg: Arc<Stg>) -> Self {
        Self::from_shared_with_options(stg, SymbolicOptions::default())
    }

    /// Prepares the encoder over an already-shared STG with explicit
    /// options.
    pub fn from_shared_with_options(stg: Arc<Stg>, options: SymbolicOptions) -> Self {
        let num_bits = stg.net().num_places() + stg.num_signals();
        let mut bdd = Bdd::new();
        bdd.set_gc(options.gc);
        bdd.set_gc_every(options.gc_every);
        if options.auto_reorder {
            bdd.set_auto_reorder(Some(AUTO_REORDER_THRESHOLD));
        }
        // Register the interleaved order up front and pin each state
        // bit's (current, next) pair so reordering moves them as one
        // block — the ±1 renames between the variable blocks depend on
        // the pair staying adjacent.
        for i in 0..num_bits {
            bdd.group(&[Self::cur(i), Self::next(i)]);
        }
        SymbolicChecker {
            stg,
            bdd,
            num_bits,
            reached: None,
            options,
        }
    }

    /// Current-state variable of state bit `i`.
    fn cur(i: usize) -> u32 {
        (2 * i) as u32
    }

    /// Next-state variable of state bit `i`.
    fn next(i: usize) -> u32 {
        (2 * i + 1) as u32
    }

    fn place_bit(&self, p: PlaceId) -> usize {
        p.index()
    }

    fn signal_bit(&self, z: Signal) -> usize {
        self.stg.net().num_places() + z.index()
    }

    fn literal(&mut self, var: u32, value: bool) -> Func {
        if value {
            self.bdd.var(var)
        } else {
            self.bdd.nvar(var)
        }
    }

    /// The cube of the initial (marking, code) state over current
    /// variables.
    fn initial_cube(&mut self) -> Func {
        let stg = Arc::clone(&self.stg);
        let mut cube = self.bdd.constant(true);
        for p in stg.net().places() {
            let marked = stg.initial_marking().tokens(p) > 0;
            let bit = self.place_bit(p);
            let lit = self.literal(Self::cur(bit), marked);
            cube = self.bdd.and(&cube, &lit);
        }
        for z in stg.signals() {
            let bit = self.signal_bit(z);
            let value = stg.initial_code().bit(z);
            let lit = self.literal(Self::cur(bit), value);
            cube = self.bdd.and(&cube, &lit);
        }
        cube
    }

    /// The relation of one transition over (current, next) variables.
    fn transition_relation(&mut self, t: petri::TransitionId) -> Func {
        let stg = Arc::clone(&self.stg);
        let net = stg.net();
        let mut rel = self.bdd.constant(true);
        let pre = net.preset(t).to_vec();
        let post = net.postset(t).to_vec();
        for p in net.places() {
            let bit = self.place_bit(p);
            let term = if pre.contains(&p) {
                // Consumed: 1 → 0.
                let c = self.literal(Self::cur(bit), true);
                let n = self.literal(Self::next(bit), false);
                self.bdd.and(&c, &n)
            } else if post.contains(&p) {
                // Produced: 0 → 1 (safe nets: target must be empty).
                let c = self.literal(Self::cur(bit), false);
                let n = self.literal(Self::next(bit), true);
                self.bdd.and(&c, &n)
            } else {
                let c = self.bdd.var(Self::cur(bit));
                let n = self.bdd.var(Self::next(bit));
                self.bdd.iff(&c, &n)
            };
            rel = self.bdd.and(&rel, &term);
        }
        for z in stg.signals() {
            let bit = self.signal_bit(z);
            let term = match stg.label(t) {
                Label::SignalEdge(zz, Edge::Rise) if zz == z => {
                    let c = self.literal(Self::cur(bit), false);
                    let n = self.literal(Self::next(bit), true);
                    self.bdd.and(&c, &n)
                }
                Label::SignalEdge(zz, Edge::Fall) if zz == z => {
                    let c = self.literal(Self::cur(bit), true);
                    let n = self.literal(Self::next(bit), false);
                    self.bdd.and(&c, &n)
                }
                _ => {
                    let c = self.bdd.var(Self::cur(bit));
                    let n = self.bdd.var(Self::next(bit));
                    self.bdd.iff(&c, &n)
                }
            };
            rel = self.bdd.and(&rel, &term);
        }
        rel
    }

    /// Computes (and caches) the reachable state set over current
    /// variables.
    pub fn reachable(&mut self) -> Func {
        match self.try_reachable(&SymbolicBudget::default()) {
            Ok(r) => r,
            Err(stop) => unreachable!("unlimited budget stopped: {stop}"),
        }
    }

    /// Arms the BDD manager with the budget's guard and node cap, so
    /// individual BDD operations — not only the fixpoint loop heads —
    /// stop cooperatively. Clears any interrupt latched by a previous
    /// (smaller) budget.
    fn arm_budget(&mut self, budget: &SymbolicBudget) {
        self.bdd.clear_interrupt();
        self.bdd.set_guard(budget.guard.clone());
        self.bdd.set_node_limit(budget.max_nodes);
    }

    /// Checks the budget between fixpoint steps; cheap relative to
    /// the image computations it brackets. Also surfaces an interrupt
    /// latched *inside* a BDD operation (whose result is garbage and
    /// must not be used).
    fn check_budget(&self, budget: &SymbolicBudget) -> Result<(), SymbolicStop> {
        if let Some(interrupt) = self.bdd.interrupt() {
            return Err(match interrupt {
                bdd::Interrupt::NodeLimit(cap) => SymbolicStop::NodeLimit(cap),
                bdd::Interrupt::Stopped(reason) => SymbolicStop::Stopped(reason),
            });
        }
        budget.guard.poll_now().map_err(SymbolicStop::Stopped)?;
        match budget.max_nodes {
            Some(cap) if self.bdd.num_nodes() > cap => Err(SymbolicStop::NodeLimit(cap)),
            _ => Ok(()),
        }
    }

    /// Budgeted variant of [`SymbolicChecker::reachable`]: polls the
    /// guard and the node cap at every fixpoint step, abandoning the
    /// (partial, uncached) reachable set on exhaustion.
    ///
    /// # Errors
    ///
    /// [`SymbolicStop`] when the guard fires or the BDD outgrows the
    /// node budget.
    pub fn try_reachable(&mut self, budget: &SymbolicBudget) -> Result<Func, SymbolicStop> {
        if let Some(r) = &self.reached {
            return Ok(r.clone());
        }
        self.arm_budget(budget);
        self.check_budget(budget)?;
        let transitions: Vec<petri::TransitionId> = self.stg.net().transitions().collect();
        let relations: Vec<Func> = transitions
            .into_iter()
            .map(|t| self.transition_relation(t))
            .collect();
        let current_vars: Vec<u32> = (0..self.num_bits).map(Self::cur).collect();
        let mut reached = self.initial_cube();
        if self.options.partitioned {
            // Frontier BFS with a partitioned image: apply each
            // transition relation to the newly discovered states only.
            let mut frontier = reached.clone();
            loop {
                self.check_budget(budget)?;
                let mut image = self.bdd.constant(false);
                for rel in &relations {
                    let step = self.bdd.and(&frontier, rel);
                    let img_next = self.bdd.exists(&step, &current_vars);
                    // next → current: 2i+1 ↦ 2i is monotone (the pair
                    // stays adjacent under reordering via its group).
                    let img = self.bdd.rename_monotone(&img_next, &|v| v - 1);
                    image = self.bdd.or(&image, &img);
                }
                let not_reached = self.bdd.not(&reached);
                let fresh = self.bdd.and(&image, &not_reached);
                if fresh.is_false() {
                    break;
                }
                reached = self.bdd.or(&reached, &fresh);
                frontier = fresh;
            }
        } else {
            // Naive monolithic relation (ablation baseline).
            let trans = self.bdd.or_all(&relations);
            loop {
                self.check_budget(budget)?;
                let step = self.bdd.and(&reached, &trans);
                let img_next = self.bdd.exists(&step, &current_vars);
                let img = self.bdd.rename_monotone(&img_next, &|v| v - 1);
                let new_reached = self.bdd.or(&reached, &img);
                if new_reached == reached {
                    break;
                }
                reached = new_reached;
            }
        }
        // An interrupt latched *inside* a BDD operation makes its
        // result the FALSE handle, which the loops above read as
        // convergence — re-check before caching so a partial set is
        // never cached or returned as complete.
        self.check_budget(budget)?;
        self.reached = Some(reached.clone());
        Ok(reached)
    }

    /// `Out(M) ∋ z` as a predicate over current place variables: some
    /// `z±`-labelled transition is enabled.
    fn output_enabled(&mut self, z: Signal) -> Func {
        let transitions: Vec<_> = self.stg.transitions_of(z).collect();
        let mut any = self.bdd.constant(false);
        for t in transitions {
            let pre = self.stg.net().preset(t).to_vec();
            let mut cube = self.bdd.constant(true);
            for p in pre {
                let bit = self.place_bit(p);
                let lit = self.bdd.var(Self::cur(bit));
                cube = self.bdd.and(&cube, &lit);
            }
            any = self.bdd.or(&any, &cube);
        }
        any
    }

    /// The conflict-pair relation: both states reachable, equal
    /// codes, different markings; with `csc` also different enabled
    /// local-output sets. The second state lives on the next-variable
    /// block.
    fn conflict_pairs(&mut self, csc: bool) -> Func {
        let stg = Arc::clone(&self.stg);
        let r = self.reachable();
        // Second copy of the state space on the odd variables.
        let r2 = self.bdd.rename_monotone(&r, &|v| v + 1);
        let mut pairs = self.bdd.and(&r, &r2);
        // Equal codes.
        for z in stg.signals() {
            let bit = self.signal_bit(z);
            let c = self.bdd.var(Self::cur(bit));
            let n = self.bdd.var(Self::next(bit));
            let eq = self.bdd.iff(&c, &n);
            pairs = self.bdd.and(&pairs, &eq);
        }
        // Different markings.
        let mut same_marking = self.bdd.constant(true);
        for p in stg.net().places() {
            let bit = self.place_bit(p);
            let c = self.bdd.var(Self::cur(bit));
            let n = self.bdd.var(Self::next(bit));
            let eq = self.bdd.iff(&c, &n);
            same_marking = self.bdd.and(&same_marking, &eq);
        }
        let diff = self.bdd.not(&same_marking);
        pairs = self.bdd.and(&pairs, &diff);
        if csc {
            let mut out_diff = self.bdd.constant(false);
            let locals: Vec<Signal> = self.stg.local_signals().collect();
            for z in locals {
                let e1 = self.output_enabled(z);
                let e2 = self.bdd.rename_monotone(&e1, &|v| v + 1);
                let d = self.bdd.xor(&e1, &e2);
                out_diff = self.bdd.or(&out_diff, &d);
            }
            pairs = self.bdd.and(&pairs, &out_diff);
        }
        pairs
    }

    /// `Nxt_z` as a predicate over current (place, code) variables:
    /// if the code bit is 0, true iff some `z+` is enabled; if 1,
    /// true iff no `z-` is enabled (§6).
    fn next_state_fn(&mut self, z: Signal) -> Func {
        let rising: Vec<_> = self
            .stg
            .transitions_of(z)
            .filter(|&t| self.stg.label(t).edge() == Some(Edge::Rise))
            .collect();
        let falling: Vec<_> = self
            .stg
            .transitions_of(z)
            .filter(|&t| self.stg.label(t).edge() == Some(Edge::Fall))
            .collect();
        let enabled = |this: &mut Self, ts: &[petri::TransitionId]| {
            let mut any = this.bdd.constant(false);
            for &t in ts {
                let pre = this.stg.net().preset(t).to_vec();
                let mut cube = this.bdd.constant(true);
                for p in pre {
                    let lit = this.bdd.var(Self::cur(this.place_bit(p)));
                    cube = this.bdd.and(&cube, &lit);
                }
                any = this.bdd.or(&any, &cube);
            }
            any
        };
        let rise_en = enabled(self, &rising);
        let fall_en = enabled(self, &falling);
        let zbit = self.bdd.var(Self::cur(self.signal_bit(z)));
        let not_fall = self.bdd.not(&fall_en);
        self.bdd.ite(&zbit, &not_fall, &rise_en)
    }

    /// The characteristic functions of normalcy-violating pairs for
    /// signal `z` (§6): `(p_viol, n_viol)` over reachable pairs with
    /// componentwise-ordered codes and discordant `Nxt_z`.
    fn normalcy_violation_sets(&mut self, z: Signal) -> (Func, Func) {
        let stg = Arc::clone(&self.stg);
        let r = self.reachable();
        let r2 = self.bdd.rename_monotone(&r, &|v| v + 1);
        let both = self.bdd.and(&r, &r2);
        // Code(x) ≤ Code(y) componentwise (x = current block, y =
        // next block).
        let mut leq = self.bdd.constant(true);
        for zz in stg.signals() {
            let bit = self.signal_bit(zz);
            let a = self.bdd.nvar(Self::cur(bit));
            let b = self.bdd.var(Self::next(bit));
            let clause = self.bdd.or(&a, &b);
            leq = self.bdd.and(&leq, &clause);
        }
        let ordered = self.bdd.and(&both, &leq);
        let nxt1 = self.next_state_fn(z);
        let nxt2 = self.bdd.rename_monotone(&nxt1, &|v| v + 1);
        // p-violation: Nxt(x) > Nxt(y); n-violation: Nxt(x) < Nxt(y).
        let not2 = self.bdd.not(&nxt2);
        let p_viol_pred = self.bdd.and(&nxt1, &not2);
        let p_viol = self.bdd.and(&ordered, &p_viol_pred);
        let not1 = self.bdd.not(&nxt1);
        let n_viol_pred = self.bdd.and(&not1, &nxt2);
        let n_viol = self.bdd.and(&ordered, &n_viol_pred);
        (p_viol, n_viol)
    }

    /// Symbolic normalcy check for signal `z` (§6): searches for
    /// reachable pairs with componentwise-ordered codes and
    /// discordant `Nxt_z` in each direction. Returns
    /// `(p_normal, n_normal)`.
    pub fn normalcy_of(&mut self, z: Signal) -> (bool, bool) {
        let (p_viol, n_viol) = self.normalcy_violation_sets(z);
        (p_viol.is_false(), n_viol.is_false())
    }

    /// Decodes one concrete pair of reachable states violating the
    /// normalcy of `z`, if any exists. Prefers a p-normalcy violation
    /// when both directions are violated.
    pub fn normalcy_witness(&mut self, z: Signal) -> Option<NormalcyPairWitness> {
        let (p_viol, n_viol) = self.normalcy_violation_sets(z);
        if self.bdd.interrupt().is_some() {
            // The violation sets were cut short by a still-armed
            // budget; a decoded assignment would be meaningless.
            return None;
        }
        let (set, positive) = if !p_viol.is_false() {
            (p_viol, true)
        } else {
            (n_viol, false)
        };
        let nv = (2 * self.num_bits) as u32;
        let bits = self.bdd.first_sat(&set, nv)?;
        let value = |var: u32| -> bool { bits[var as usize] };
        let np = self.stg.net().num_places();
        let mut m1 = Marking::empty(np);
        let mut m2 = Marking::empty(np);
        for p in self.stg.net().places() {
            let bit = self.place_bit(p);
            if value(Self::cur(bit)) {
                m1.add_token(p);
            }
            if value(Self::next(bit)) {
                m2.add_token(p);
            }
        }
        let code_bits = |block: fn(usize) -> u32| -> Vec<bool> {
            self.stg
                .signals()
                .map(|zz| value(block(self.signal_bit(zz))))
                .collect()
        };
        Some(NormalcyPairWitness {
            signal: z,
            marking1: m1,
            marking2: m2,
            code1: CodeVec::from_bits(code_bits(Self::cur)),
            code2: CodeVec::from_bits(code_bits(Self::next)),
            positive,
        })
    }

    /// Budgeted variant of [`SymbolicChecker::normalcy_of`].
    ///
    /// # Errors
    ///
    /// [`SymbolicStop`] when the budget is exhausted before the
    /// verdict is known.
    pub fn try_normalcy_of(
        &mut self,
        z: Signal,
        budget: &SymbolicBudget,
    ) -> Result<(bool, bool), SymbolicStop> {
        self.try_reachable(budget)?;
        self.arm_budget(budget);
        let verdict = self.normalcy_of(z);
        self.check_budget(budget)?;
        Ok(verdict)
    }

    /// Whether every circuit-driven signal is p- or n-normal.
    pub fn is_normal(&mut self) -> bool {
        let locals: Vec<Signal> = self.stg.local_signals().collect();
        locals.into_iter().all(|z| {
            let (p, n) = self.normalcy_of(z);
            p || n
        })
    }

    /// Budgeted variant of [`SymbolicChecker::is_normal`], checking
    /// the budget between signals.
    ///
    /// # Errors
    ///
    /// [`SymbolicStop`] when the budget is exhausted before the
    /// verdict is known.
    pub fn try_is_normal(&mut self, budget: &SymbolicBudget) -> Result<bool, SymbolicStop> {
        let locals: Vec<Signal> = self.stg.local_signals().collect();
        for z in locals {
            let (p, n) = self.try_normalcy_of(z, budget)?;
            if !p && !n {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Runs the full analysis: reachability plus the characteristic
    /// functions of all USC and CSC conflict pairs.
    pub fn analyse(&mut self) -> SymbolicReport {
        match self.try_analyse(&SymbolicBudget::default()) {
            Ok(report) => report,
            Err(stop) => unreachable!("unlimited budget stopped: {stop}"),
        }
    }

    /// Budgeted variant of [`SymbolicChecker::analyse`].
    ///
    /// # Errors
    ///
    /// [`SymbolicStop`] when the budget is exhausted mid-analysis;
    /// no partial report is produced (counts would be misleading).
    pub fn try_analyse(&mut self, budget: &SymbolicBudget) -> Result<SymbolicReport, SymbolicStop> {
        let r = self.try_reachable(budget)?;
        self.arm_budget(budget);
        let usc = self.conflict_pairs(false);
        self.check_budget(budget)?;
        let csc = self.conflict_pairs(true);
        self.check_budget(budget)?;
        let nv = (2 * self.num_bits) as u32;
        // States range over current variables only: divide the count
        // over all 2k variables by 2^k.
        let scale = 2f64.powi(self.num_bits as i32);
        Ok(SymbolicReport {
            num_states: self.bdd.sat_count(&r, nv) / scale,
            usc_pairs: self.bdd.sat_count(&usc, nv) / 2.0,
            csc_pairs: self.bdd.sat_count(&csc, nv) / 2.0,
            bdd_nodes: self.bdd.peak_live_nodes(),
        })
    }

    /// Peak live BDD nodes so far (partial work included), for
    /// resource reporting after an exhausted run.
    pub fn nodes_allocated(&self) -> usize {
        self.bdd.peak_live_nodes()
    }

    /// Snapshot of the underlying manager's resource counters
    /// (live/peak nodes, GC runs, reorder passes, current order).
    pub fn bdd_stats(&self) -> BddStats {
        self.bdd.stats()
    }

    /// Whether the underlying manager currently has a latched
    /// interrupt (i.e. the last budgeted run was truncated).
    pub fn interrupted(&self) -> bool {
        self.bdd.interrupt().is_some()
    }

    /// Overrides the automatic-reorder threshold (`None` disables
    /// auto-reorder). Test/bench knob.
    pub fn set_auto_reorder_threshold(&mut self, threshold: Option<usize>) {
        self.bdd.set_auto_reorder(threshold);
    }

    /// Decodes one USC conflict pair into concrete states, if any
    /// exists.
    pub fn usc_witness(&mut self) -> Option<SymbolicWitness> {
        self.decode_witness(false)
    }

    /// Decodes one CSC conflict pair into concrete states, if any
    /// exists: two reachable markings with equal codes but different
    /// enabled local-output sets.
    pub fn csc_witness(&mut self) -> Option<SymbolicWitness> {
        self.decode_witness(true)
    }

    fn decode_witness(&mut self, csc: bool) -> Option<SymbolicWitness> {
        let pairs = self.conflict_pairs(csc);
        if self.bdd.interrupt().is_some() {
            // The pair relation was cut short by a still-armed
            // budget; a decoded assignment would be meaningless.
            return None;
        }
        // first_sat is canonical in the variable *names*, so the
        // witness is identical whatever the GC/reordering history.
        let nv = (2 * self.num_bits) as u32;
        let bits = self.bdd.first_sat(&pairs, nv)?;
        let value = |var: u32| -> bool { bits[var as usize] };
        let np = self.stg.net().num_places();
        let mut m1 = Marking::empty(np);
        let mut m2 = Marking::empty(np);
        for p in self.stg.net().places() {
            let bit = self.place_bit(p);
            if value(Self::cur(bit)) {
                m1.add_token(p);
            }
            if value(Self::next(bit)) {
                m2.add_token(p);
            }
        }
        let bits: Vec<bool> = self
            .stg
            .signals()
            .map(|z| value(Self::cur(self.signal_bit(z))))
            .collect();
        Some(SymbolicWitness {
            marking1: m1,
            marking2: m2,
            code: CodeVec::from_bits(bits),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stg::gen::counterflow::counterflow_sym;
    use stg::gen::duplex::dup_4ph;
    use stg::gen::ring::lazy_ring;
    use stg::gen::vme::{vme_read, vme_read_csc_resolved};
    use stg::StateGraph;

    fn agree_with_explicit(stg: &Stg) {
        let sg = StateGraph::build(stg, Default::default()).unwrap();
        let mut checker = SymbolicChecker::new(stg);
        let report = checker.analyse();
        assert_eq!(report.num_states, sg.num_states() as f64, "state count");
        assert_eq!(
            report.usc_pairs as usize,
            sg.usc_conflict_pairs().len(),
            "usc pairs"
        );
        assert_eq!(
            report.csc_pairs as usize,
            sg.csc_conflict_pairs(stg).len(),
            "csc pairs"
        );
    }

    #[test]
    fn vme_matches_explicit_counts() {
        agree_with_explicit(&vme_read());
    }

    #[test]
    fn resolved_vme_is_csc_free() {
        let stg = vme_read_csc_resolved();
        agree_with_explicit(&stg);
        let mut checker = SymbolicChecker::new(&stg);
        assert!(checker.analyse().satisfies_csc());
    }

    #[test]
    fn families_agree_with_explicit() {
        agree_with_explicit(&lazy_ring(3));
        agree_with_explicit(&dup_4ph(2, false));
        agree_with_explicit(&counterflow_sym(2, 2));
    }

    #[test]
    fn witness_states_are_reachable_with_equal_codes() {
        let stg = vme_read();
        let sg = StateGraph::build(&stg, Default::default()).unwrap();
        let mut checker = SymbolicChecker::new(&stg);
        let w = checker.usc_witness().expect("vme has conflicts");
        assert_ne!(w.marking1, w.marking2);
        let s1 = sg.reachability().state_of(&w.marking1).expect("reachable");
        let s2 = sg.reachability().state_of(&w.marking2).expect("reachable");
        assert_eq!(sg.code(s1), sg.code(s2));
        assert_eq!(sg.code(s1), &w.code);
    }

    #[test]
    fn conflict_free_has_no_witness() {
        let stg = counterflow_sym(2, 2);
        let mut checker = SymbolicChecker::new(&stg);
        assert!(checker.usc_witness().is_none());
        assert!(checker.csc_witness().is_none());
    }

    #[test]
    fn csc_witness_states_differ_in_enabled_outputs() {
        let stg = vme_read();
        let sg = StateGraph::build(&stg, Default::default()).unwrap();
        let mut checker = SymbolicChecker::new(&stg);
        let w = checker.csc_witness().expect("vme has a CSC conflict");
        assert_ne!(w.marking1, w.marking2);
        let s1 = sg.reachability().state_of(&w.marking1).expect("reachable");
        let s2 = sg.reachability().state_of(&w.marking2).expect("reachable");
        assert_eq!(sg.code(s1), sg.code(s2));
        assert_eq!(sg.code(s1), &w.code);
        // CSC (not just USC): the enabled local-output sets differ.
        assert_ne!(
            stg.enabled_local_signals(&w.marking1),
            stg.enabled_local_signals(&w.marking2),
            "CSC witness states must differ in enabled outputs"
        );
    }

    #[test]
    fn normalcy_matches_explicit_oracle() {
        for stg in [
            vme_read_csc_resolved(),
            counterflow_sym(2, 2),
            dup_4ph(1, true),
            lazy_ring(2),
        ] {
            let sg = StateGraph::build(&stg, Default::default()).unwrap();
            let mut checker = SymbolicChecker::new(&stg);
            for z in stg.local_signals().collect::<Vec<_>>() {
                let oracle = sg.normalcy_of(&stg, z);
                let (p, n) = checker.normalcy_of(z);
                assert_eq!(p, oracle.p_normal, "{}", stg.signal_name(z));
                assert_eq!(n, oracle.n_normal, "{}", stg.signal_name(z));
            }
            assert_eq!(checker.is_normal(), sg.is_normal(&stg));
        }
    }

    #[test]
    fn normalcy_witness_decodes_a_discordant_reachable_pair() {
        let stg = vme_read_csc_resolved();
        let sg = StateGraph::build(&stg, Default::default()).unwrap();
        let csc = stg.signal_by_name("csc").unwrap();
        let mut checker = SymbolicChecker::new(&stg);
        let (p, n) = checker.normalcy_of(csc);
        assert!(!p && !n, "csc is neither p- nor n-normal");
        let w = checker.normalcy_witness(csc).expect("violated ⇒ witness");
        assert_eq!(w.signal, csc);
        // Both states are reachable and carry the decoded codes.
        let s1 = sg.reachability().state_of(&w.marking1).expect("reachable");
        let s2 = sg.reachability().state_of(&w.marking2).expect("reachable");
        assert_eq!(sg.code(s1), &w.code1);
        assert_eq!(sg.code(s2), &w.code2);
        // The pair is ordered and Nxt_z is discordant in the claimed
        // direction (§6).
        assert!(w.code1.componentwise_le(&w.code2));
        let nxt1 = stg.next_state(&w.marking1, &w.code1, csc);
        let nxt2 = stg.next_state(&w.marking2, &w.code2, csc);
        if w.positive {
            assert!(nxt1 && !nxt2, "p-violation: Nxt falls along the order");
        } else {
            assert!(!nxt1 && nxt2, "n-violation: Nxt rises along the order");
        }
    }

    #[test]
    fn fully_normal_signal_has_no_normalcy_witness() {
        let stg = counterflow_sym(2, 2);
        let mut checker = SymbolicChecker::new(&stg);
        for z in stg.local_signals().collect::<Vec<_>>() {
            let (p, n) = checker.normalcy_of(z);
            if p && n {
                assert!(checker.normalcy_witness(z).is_none());
            }
        }
    }

    #[test]
    fn node_budget_stops_analysis() {
        let stg = counterflow_sym(2, 2);
        let mut checker = SymbolicChecker::new(&stg);
        let budget = SymbolicBudget {
            max_nodes: Some(8),
            ..Default::default()
        };
        let err = checker
            .try_analyse(&budget)
            .expect_err("8 nodes is hopeless");
        assert_eq!(err, SymbolicStop::NodeLimit(8));
        assert!(checker.nodes_allocated() > 0);
        // The same checker still completes without a budget.
        let report = checker.analyse();
        assert!(report.num_states > 0.0);
    }

    #[test]
    fn budget_exhaustion_never_poisons_the_reached_cache() {
        // An interrupt latched mid-fixpoint makes the interrupted
        // operation return FALSE, which the loop used to read as
        // convergence — caching a *partial* reachable set that a later
        // unlimited run on the same (warm) checker would then trust.
        // Sweep node caps across the fixpoint's working range (the
        // loop starts at ~2.7k nodes and peaks at ~8.4k on this
        // instance) so some run trips mid-iteration — caps below the
        // loop entry are caught by the loop-head check and never
        // exercise the window. Insist every failed budgeted run leaves
        // the checker able to produce the exact ground-truth report
        // afterwards.
        let stg = counterflow_sym(2, 2);
        let truth = SymbolicChecker::new(&stg).analyse();
        assert!(truth.num_states > 0.0);
        for partitioned in [true, false] {
            for cap in (2500..8600).step_by(211) {
                let mut checker = SymbolicChecker::with_options(
                    &stg,
                    SymbolicOptions {
                        partitioned,
                        ..SymbolicOptions::default()
                    },
                );
                let budget = SymbolicBudget {
                    max_nodes: Some(cap),
                    ..Default::default()
                };
                if checker.try_analyse(&budget).is_err() {
                    let report = checker.analyse();
                    let ctx = format!("cap {cap}, partitioned {partitioned}");
                    assert_eq!(report.num_states, truth.num_states, "{ctx}");
                    assert_eq!(report.usc_pairs, truth.usc_pairs, "{ctx}");
                    assert_eq!(report.csc_pairs, truth.csc_pairs, "{ctx}");
                }
            }
        }
    }

    #[test]
    fn cancelled_guard_stops_analysis() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;

        let stg = vme_read();
        let mut checker = SymbolicChecker::new(&stg);
        let budget = SymbolicBudget {
            guard: StopGuard::new(Some(Arc::new(AtomicBool::new(true))), None),
            max_nodes: None,
        };
        let err = checker.try_analyse(&budget).expect_err("pre-cancelled");
        assert_eq!(err, SymbolicStop::Stopped(StopReason::Cancelled));
    }

    #[test]
    fn partitioned_and_monolithic_agree() {
        for stg in [vme_read(), lazy_ring(3), counterflow_sym(2, 2)] {
            let fast = SymbolicChecker::new(&stg).analyse();
            let naive = SymbolicChecker::with_options(
                &stg,
                SymbolicOptions {
                    partitioned: false,
                    ..SymbolicOptions::default()
                },
            )
            .analyse();
            assert_eq!(fast.num_states, naive.num_states);
            assert_eq!(fast.usc_pairs, naive.usc_pairs);
            assert_eq!(fast.csc_pairs, naive.csc_pairs);
        }
    }

    #[test]
    fn forced_gc_and_sifting_match_the_default_run() {
        for stg in [vme_read(), counterflow_sym(2, 2)] {
            let mut plain = SymbolicChecker::with_options(
                &stg,
                SymbolicOptions {
                    gc: false,
                    auto_reorder: false,
                    ..SymbolicOptions::default()
                },
            );
            let base_report = plain.analyse();
            let base_usc = plain.usc_witness();
            let base_csc = plain.csc_witness();

            let mut stressed = SymbolicChecker::with_options(
                &stg,
                SymbolicOptions {
                    gc_every: Some(64),
                    ..SymbolicOptions::default()
                },
            );
            stressed.set_auto_reorder_threshold(Some(64));
            let report = stressed.analyse();
            assert_eq!(report.num_states, base_report.num_states);
            assert_eq!(report.usc_pairs, base_report.usc_pairs);
            assert_eq!(report.csc_pairs, base_report.csc_pairs);
            assert_eq!(stressed.usc_witness(), base_usc);
            assert_eq!(stressed.csc_witness(), base_csc);
            assert!(stressed.bdd_stats().gc_runs > 0, "forced GC must run");
        }
    }
}
