//! The Minato-Morreale ISOP procedure: an irredundant sum-of-products
//! cover `F` with `L ⊆ F ⊆ U` extracted directly from BDDs.

use bdd::{Bdd, Func};

use crate::cover::Cube;

/// Internal literal representation during recursion.
#[derive(Debug, Clone, Copy)]
enum Lit {
    Pos(u32),
    Neg(u32),
}

/// Computes an irredundant SOP between lower bound `l` and upper
/// bound `u` (requires `l → u`). Returns the cube list and the BDD of
/// the cover.
pub(crate) fn isop(m: &mut Bdd, l: &Func, u: &Func) -> (Vec<Cube>, Func) {
    let mut cubes = Vec::new();
    let f = isop_rec(m, l.clone(), u.clone(), &mut Vec::new(), &mut cubes);
    (cubes, f)
}

fn isop_rec(m: &mut Bdd, l: Func, u: Func, path: &mut Vec<Lit>, out: &mut Vec<Cube>) -> Func {
    debug_assert!(
        {
            let nl = m.not(&l);
            m.or(&nl, &u).is_true()
        },
        "ISOP requires l ⊆ u"
    );
    if l.is_false() {
        return m.constant(false);
    }
    if u.is_true() {
        // Emit the cube accumulated on the path.
        out.push(cube_of(path));
        return m.constant(true);
    }
    // Top variable of l and u (in the manager's current order).
    let x = m.top_var([&l, &u]).expect("non-terminal");
    let l0 = m.restrict(&l, x, false);
    let l1 = m.restrict(&l, x, true);
    let u0 = m.restrict(&u, x, false);
    let u1 = m.restrict(&u, x, true);

    // Minterms of l0 not coverable without the literal ¬x.
    let not_u1 = m.not(&u1);
    let l0_only = m.and(&l0, &not_u1);
    path.push(Lit::Neg(x));
    let g0 = isop_rec(m, l0_only, u0.clone(), path, out);
    path.pop();

    let not_u0 = m.not(&u0);
    let l1_only = m.and(&l1, &not_u0);
    path.push(Lit::Pos(x));
    let g1 = isop_rec(m, l1_only, u1.clone(), path, out);
    path.pop();

    // What remains must be covered x-independently.
    let ng0 = m.not(&g0);
    let ng1 = m.not(&g1);
    let h0 = m.and(&l0, &ng0);
    let h1 = m.and(&l1, &ng1);
    let l_star = m.or(&h0, &h1);
    let u_star = m.and(&u0, &u1);
    let g_star = isop_rec(m, l_star, u_star, path, out);

    // Assemble the BDD of the cover: ¬x·g0 ∨ x·g1 ∨ g*.
    let vx = m.var(x);
    let branch = m.ite(&vx, &g1, &g0);
    m.or(&branch, &g_star)
}

fn cube_of(path: &[Lit]) -> Cube {
    let mut literals: Vec<(u32, bool)> = path
        .iter()
        .map(|&l| match l {
            Lit::Pos(v) => (v, true),
            Lit::Neg(v) => (v, false),
        })
        .collect();
    literals.sort_unstable();
    Cube { literals }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cover_bdd(m: &mut Bdd, cubes: &[Cube]) -> Func {
        let mut f = m.constant(false);
        for c in cubes {
            let mut cube = m.constant(true);
            for &(v, pos) in &c.literals {
                let lit = if pos { m.var(v) } else { m.nvar(v) };
                cube = m.and(&cube, &lit);
            }
            f = m.or(&f, &cube);
        }
        f
    }

    #[test]
    fn exact_cover_of_xor() {
        let mut m = Bdd::new();
        let x = m.var(0);
        let y = m.var(1);
        let f = m.xor(&x, &y);
        let (cubes, g) = isop(&mut m, &f, &f);
        assert_eq!(g, f, "cover function equals the target");
        assert_eq!(cubes.len(), 2, "xor needs two cubes");
        assert_eq!(cover_bdd(&mut m, &cubes), f);
    }

    #[test]
    fn dont_cares_shrink_the_cover() {
        let mut m = Bdd::new();
        let x = m.var(0);
        let y = m.var(1);
        // on-set = x∧y, dc = x∧¬y: upper bound is x.
        let on = m.and(&x, &y);
        let (cubes, g) = isop(&mut m, &on, &x);
        assert_eq!(cubes.len(), 1);
        assert_eq!(cubes[0].literals, vec![(0, true)], "collapses to x");
        assert_eq!(g, x);
    }

    #[test]
    fn constants() {
        let mut m = Bdd::new();
        let fls = m.constant(false);
        let (cubes, g) = isop(&mut m, &fls, &fls);
        assert!(cubes.is_empty());
        assert!(g.is_false());
        let tru = m.constant(true);
        let (cubes, g) = isop(&mut m, &tru, &tru);
        assert_eq!(cubes.len(), 1);
        assert!(cubes[0].literals.is_empty(), "the tautology cube");
        assert!(g.is_true());
    }

    #[test]
    fn cover_is_between_bounds_on_random_functions() {
        // Small deterministic sweep over 3-variable functions.
        let mut m = Bdd::new();
        let vars = [m.var(0), m.var(1), m.var(2)];
        for bits in 0u32..256 {
            // Build the function with on-set given by `bits`.
            let mut f = m.constant(false);
            for minterm in 0..8 {
                if bits & (1 << minterm) != 0 {
                    let mut cube = m.constant(true);
                    for (v, var) in vars.iter().enumerate() {
                        let lit = if minterm & (1 << v) != 0 {
                            var.clone()
                        } else {
                            m.not(var)
                        };
                        cube = m.and(&cube, &lit);
                    }
                    f = m.or(&f, &cube);
                }
            }
            let (cubes, g) = isop(&mut m, &f, &f);
            assert_eq!(g, f, "bits={bits:#010b}");
            assert_eq!(cover_bdd(&mut m, &cubes), f);
        }
    }
}
