//! Unateness analysis.
//!
//! A function is *positive unate* in `x` if `f[x:=0] → f[x:=1]`
//! pointwise, *negative unate* if the implication is reversed, and
//! *binate* otherwise. A function that is unate in every support
//! variable is *monotonic* (up to per-input polarity) and therefore
//! implementable with gate libraries whose characteristic functions
//! are monotonic — the §6 connection: a signal violating both p- and
//! n-normalcy ends up with a binate next-state function (like `csc`
//! in the paper's Fig. 3 example).

use bdd::{Bdd, Func};

/// How a function depends on one variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarPolarity {
    /// Not in the support.
    Independent,
    /// Positive unate.
    Positive,
    /// Negative unate.
    Negative,
    /// Binate (both polarities matter somewhere).
    Binate,
}

/// Per-variable polarities of a function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Unateness {
    polarities: Vec<VarPolarity>,
}

impl Unateness {
    /// Analyses `f` over variables `0..num_vars`.
    pub fn of(m: &mut Bdd, f: &Func, num_vars: u32) -> Self {
        let polarities = (0..num_vars)
            .map(|v| {
                let f0 = m.restrict(f, v, false);
                let f1 = m.restrict(f, v, true);
                if f0 == f1 {
                    return VarPolarity::Independent;
                }
                let nf0 = m.not(&f0);
                let up = m.or(&nf0, &f1).is_true(); // f0 → f1
                let nf1 = m.not(&f1);
                let down = m.or(&nf1, &f0).is_true(); // f1 → f0
                match (up, down) {
                    (true, false) => VarPolarity::Positive,
                    (false, true) => VarPolarity::Negative,
                    (false, false) => VarPolarity::Binate,
                    (true, true) => unreachable!("f0 ↔ f1 contradicts f0 ≠ f1"),
                }
            })
            .collect();
        Unateness { polarities }
    }

    /// Polarity of variable `v`.
    pub fn polarity(&self, v: u32) -> VarPolarity {
        self.polarities[v as usize]
    }

    /// Variables in the support.
    pub fn support(&self) -> impl Iterator<Item = u32> + '_ {
        self.polarities
            .iter()
            .enumerate()
            .filter(|(_, &p)| p != VarPolarity::Independent)
            .map(|(i, _)| i as u32)
    }

    /// Whether the function is unate in every support variable
    /// (possibly with mixed polarities — such functions still need
    /// input inverters).
    pub fn is_unate(&self) -> bool {
        self.polarities.iter().all(|&p| p != VarPolarity::Binate)
    }

    /// Whether the function is monotone nondecreasing (every support
    /// variable positive).
    pub fn is_increasing(&self) -> bool {
        self.polarities
            .iter()
            .all(|&p| matches!(p, VarPolarity::Positive | VarPolarity::Independent))
    }

    /// Whether the function is monotone nonincreasing.
    pub fn is_decreasing(&self) -> bool {
        self.polarities
            .iter()
            .all(|&p| matches!(p, VarPolarity::Negative | VarPolarity::Independent))
    }

    /// Whether the function is monotonic in the paper's §6 sense:
    /// order-preserving or order-reversing as a whole (positive *or*
    /// negative in all support variables; mixed polarity — like the
    /// paper's `csc = dsr (csc + ldtack')` — does not qualify, as it
    /// needs an input inverter).
    pub fn is_monotonic(&self) -> bool {
        self.is_increasing() || self.is_decreasing()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn polarity_classification() {
        let mut m = Bdd::new();
        let x = m.var(0);
        let y = m.var(1);
        let ny = m.not(&y);
        // f = x ∧ ¬y: positive in x, negative in y.
        let f = m.and(&x, &ny);
        let u = Unateness::of(&mut m, &f, 3);
        assert_eq!(u.polarity(0), VarPolarity::Positive);
        assert_eq!(u.polarity(1), VarPolarity::Negative);
        assert_eq!(u.polarity(2), VarPolarity::Independent);
        // Unate in each variable, but mixed polarity: needs an input
        // inverter, so not monotonic in the paper's sense.
        assert!(u.is_unate());
        assert!(!u.is_monotonic());
        assert_eq!(u.support().collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn xor_is_binate() {
        let mut m = Bdd::new();
        let x = m.var(0);
        let y = m.var(1);
        let f = m.xor(&x, &y);
        let u = Unateness::of(&mut m, &f, 2);
        assert_eq!(u.polarity(0), VarPolarity::Binate);
        assert_eq!(u.polarity(1), VarPolarity::Binate);
        assert!(!u.is_unate());
        assert!(!u.is_monotonic());
    }

    #[test]
    fn constants_have_empty_support() {
        let mut m = Bdd::new();
        let t = m.constant(true);
        let u = Unateness::of(&mut m, &t, 4);
        assert_eq!(u.support().count(), 0);
        assert!(u.is_monotonic());
    }

    #[test]
    fn majority_is_positive_unate_everywhere() {
        let mut m = Bdd::new();
        let x = m.var(0);
        let y = m.var(1);
        let z = m.var(2);
        let xy = m.and(&x, &y);
        let yz = m.and(&y, &z);
        let xz = m.and(&x, &z);
        let t = m.or(&xy, &yz);
        let maj = m.or(&t, &xz);
        let u = Unateness::of(&mut m, &maj, 3);
        for v in 0..3 {
            assert_eq!(u.polarity(v), VarPolarity::Positive);
        }
        assert!(u.is_increasing());
        assert!(u.is_monotonic());
        assert!(!u.is_decreasing());
    }
}
