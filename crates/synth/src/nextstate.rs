//! Deriving next-state functions from the state graph.

use bdd::{Bdd, Func};
use petri::ExploreLimits;
use stg::{Signal, StateGraph, Stg};

use crate::cover::Equation;
use crate::error::SynthError;
use crate::isop::isop;
use crate::unate::Unateness;

/// The next-state functions of all circuit-driven signals of a
/// CSC-satisfying STG, represented over one shared BDD manager with
/// variable `i` = signal `i`'s code bit.
///
/// See the crate-level example.
pub struct NextStateFunctions<'a> {
    stg: &'a Stg,
    manager: Bdd,
    /// Per local signal: (on-set over reachable codes, signal).
    on_sets: Vec<(Signal, Func)>,
    /// Characteristic function of the reachable codes (the care set).
    care: Func,
}

impl<'a> NextStateFunctions<'a> {
    /// Builds the functions by enumerating the state graph.
    ///
    /// # Errors
    ///
    /// * [`SynthError::StateGraph`] if the state graph cannot be
    ///   built within `limits` (or the STG is inconsistent);
    /// * [`SynthError::CodingConflict`] if two states share a code
    ///   but disagree on some `Nxt_z` — i.e. CSC is violated for `z`.
    pub fn derive(stg: &'a Stg, limits: ExploreLimits) -> Result<Self, SynthError> {
        let sg =
            StateGraph::build(stg, limits).map_err(|e| SynthError::StateGraph(e.to_string()))?;
        let mut manager = Bdd::new();
        let locals: Vec<Signal> = stg.local_signals().collect();
        let mut care = manager.constant(false);
        let mut on: Vec<Func> = vec![manager.constant(false); locals.len()];
        let mut off: Vec<Func> = vec![manager.constant(false); locals.len()];
        for s in sg.states() {
            let code = sg.code(s);
            // Minterm of this state's code.
            let mut minterm = manager.constant(true);
            for z in stg.signals() {
                let lit = if code.bit(z) {
                    manager.var(z.index() as u32)
                } else {
                    manager.nvar(z.index() as u32)
                };
                minterm = manager.and(&minterm, &lit);
            }
            care = manager.or(&care, &minterm);
            for (i, &z) in locals.iter().enumerate() {
                if stg.next_state(sg.marking(s), code, z) {
                    on[i] = manager.or(&on[i], &minterm);
                } else {
                    off[i] = manager.or(&off[i], &minterm);
                }
            }
        }
        // Well-definedness: on and off sets must be disjoint.
        for (i, &z) in locals.iter().enumerate() {
            let overlap = manager.and(&on[i], &off[i]);
            if !overlap.is_false() {
                return Err(SynthError::CodingConflict { signal: z });
            }
        }
        Ok(NextStateFunctions {
            stg,
            manager,
            on_sets: locals.into_iter().zip(on).collect(),
            care,
        })
    }

    /// The signals with derived functions (outputs + internal).
    pub fn signals(&self) -> impl Iterator<Item = Signal> + '_ {
        self.on_sets.iter().map(|&(z, _)| z)
    }

    fn entry(&self, z: Signal) -> (Signal, Func) {
        self.on_sets
            .iter()
            .find(|&&(s, _)| s == z)
            .map(|(s, f)| (*s, f.clone()))
            .unwrap_or_else(|| panic!("signal {z} is not circuit-driven"))
    }

    /// The on-set of `Nxt_z` restricted to reachable codes.
    ///
    /// # Panics
    ///
    /// Panics if `z` is an input signal.
    pub fn on_set(&self, z: Signal) -> Func {
        self.entry(z).1
    }

    /// The characteristic function of reachable codes (care set).
    pub fn care_set(&self) -> Func {
        self.care.clone()
    }

    /// Access to the shared BDD manager.
    pub fn manager(&mut self) -> &mut Bdd {
        &mut self.manager
    }

    /// An irredundant sum-of-products cover of `Nxt_z`, using
    /// unreachable codes as don't-cares (ISOP between `on` and
    /// `on ∨ ¬care`).
    ///
    /// # Panics
    ///
    /// Panics if `z` is an input signal.
    pub fn equation(&mut self, z: Signal) -> Equation<'a> {
        let (_, on) = self.entry(z);
        let care = self.care.clone();
        let not_care = self.manager.not(&care);
        let upper = self.manager.or(&on, &not_care);
        let (cubes, cover) = isop(&mut self.manager, &on, &upper);
        // The cover must agree with the on-set on the care space.
        debug_assert_eq!(self.manager.and(&cover, &care), on);
        Equation {
            stg: self.stg,
            signal: z,
            cubes,
        }
    }

    /// Unateness of `Nxt_z` (computed on the cover between on-set and
    /// don't-cares — the function the circuit actually implements).
    ///
    /// # Panics
    ///
    /// Panics if `z` is an input signal.
    pub fn unateness(&mut self, z: Signal) -> Unateness {
        let (_, on) = self.entry(z);
        let care = self.care.clone();
        let not_care = self.manager.not(&care);
        let upper = self.manager.or(&on, &not_care);
        let (_, cover) = isop(&mut self.manager, &on, &upper);
        Unateness::of(&mut self.manager, &cover, self.stg.num_signals() as u32)
    }

    /// Set/reset covers for a generalized C-element (gC)
    /// implementation of `z`: the *set* cover fires on states where
    /// `z` is low and excited (`z = 0 ∧ Nxt_z = 1`), the *reset*
    /// cover where `z` is high and excited to fall. States where `z`
    /// holds its value — and all unreachable codes — are don't-cares,
    /// which is what makes gC covers much smaller than the flat
    /// next-state equation.
    ///
    /// # Panics
    ///
    /// Panics if `z` is an input signal.
    pub fn gc_covers(&mut self, z: Signal) -> (Equation<'a>, Equation<'a>) {
        let (_, on) = self.entry(z);
        let care = self.care.clone();
        let zvar = z.index() as u32;
        let m = &mut self.manager;
        let z_low = m.nvar(zvar);
        let z_high = m.var(zvar);
        let not_on = m.not(&on);
        let off = m.and(&care, &not_on);
        // Set: must cover (z=0 ∧ Nxt=1); must avoid (z=0 ∧ Nxt=0).
        let set_lower = m.and(&z_low, &on);
        let set_forbidden = m.and(&z_low, &off);
        let set_upper = m.not(&set_forbidden);
        let (set_cubes, set_cover) = isop(m, &set_lower, &set_upper);
        debug_assert_eq!(m.and(&set_cover, &set_lower), set_lower);
        debug_assert!(m.and(&set_cover, &set_forbidden).is_false());
        // Reset: must cover (z=1 ∧ Nxt=0); must avoid (z=1 ∧ Nxt=1).
        let reset_lower = m.and(&z_high, &off);
        let reset_forbidden = m.and(&z_high, &on);
        let reset_upper = m.not(&reset_forbidden);
        let (reset_cubes, reset_cover) = isop(m, &reset_lower, &reset_upper);
        debug_assert_eq!(m.and(&reset_cover, &reset_lower), reset_lower);
        debug_assert!(m.and(&reset_cover, &reset_forbidden).is_false());
        (
            Equation {
                stg: self.stg,
                signal: z,
                cubes: set_cubes,
            },
            Equation {
                stg: self.stg,
                signal: z,
                cubes: reset_cubes,
            },
        )
    }

    /// Whether a monotone *nondecreasing* completion of `Nxt_z` over
    /// the don't-care space exists: no reachable on-code may be
    /// dominated (componentwise) by a reachable off-code. This is
    /// exactly p-normalcy (§6) expressed over codes.
    ///
    /// # Panics
    ///
    /// Panics if `z` is an input signal.
    pub fn has_increasing_completion(&mut self, z: Signal) -> bool {
        self.has_monotone_completion(z, true)
    }

    /// Whether a monotone *nonincreasing* completion exists — exactly
    /// n-normalcy over codes.
    ///
    /// # Panics
    ///
    /// Panics if `z` is an input signal.
    pub fn has_decreasing_completion(&mut self, z: Signal) -> bool {
        self.has_monotone_completion(z, false)
    }

    fn has_monotone_completion(&mut self, z: Signal, increasing: bool) -> bool {
        let (_, on) = self.entry(z);
        let care = self.care.clone();
        let n = self.stg.num_signals() as u32;
        let m = &mut self.manager;
        let not_on = m.not(&on);
        let off = m.and(&care, &not_on);
        // Second code block on variables n..2n.
        let off_shifted = m.rename_monotone(&off, &|v| v + n);
        // x ≤ y componentwise (x = block 0, y = block 1).
        let mut leq = m.constant(true);
        for v in 0..n {
            let (a, b) = if increasing { (v, v + n) } else { (v + n, v) };
            let na = m.nvar(a);
            let vb = m.var(b);
            let clause = m.or(&na, &vb);
            leq = m.and(&leq, &clause);
        }
        // A violating pair: on(x) ∧ off(y) ∧ x ≤ y (increasing case).
        let pair = m.and(&on, &off_shifted);
        let violation = m.and(&pair, &leq);
        violation.is_false()
    }

    /// Whether `Nxt_z` is implementable with monotonic gates in the
    /// §6 sense: some monotone (nondecreasing or nonincreasing)
    /// completion exists. Equivalent to signal `z` being p-normal or
    /// n-normal.
    ///
    /// # Panics
    ///
    /// Panics if `z` is an input signal.
    pub fn is_monotonic(&mut self, z: Signal) -> bool {
        self.has_increasing_completion(z) || self.has_decreasing_completion(z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stg::gen::counterflow::counterflow_sym;
    use stg::gen::vme::{vme_read, vme_read_csc_resolved};

    #[test]
    fn vme_without_csc_has_no_functions() {
        let model = vme_read();
        match NextStateFunctions::derive(&model, Default::default()) {
            Err(SynthError::CodingConflict { signal }) => {
                // The conflict manifests on lds or d (Out = {lds} vs {d}).
                let name = model.signal_name(signal);
                assert!(name == "lds" || name == "d", "got {name}");
            }
            other => panic!("expected a coding conflict, got {:?}", other.is_ok()),
        }
    }

    #[test]
    fn resolved_vme_equations_match_the_paper() {
        let model = vme_read_csc_resolved();
        let mut fns = NextStateFunctions::derive(&model, Default::default()).unwrap();
        let eq = |fns: &mut NextStateFunctions, name: &str| {
            let z = model.signal_by_name(name).unwrap();
            fns.equation(z).to_string()
        };
        // §6 of the paper: dtack = d, lds = d + csc, d = ldtack csc.
        assert_eq!(eq(&mut fns, "dtack"), "dtack = d");
        assert_eq!(eq(&mut fns, "lds"), "lds = d + csc");
        assert_eq!(eq(&mut fns, "d"), "d = ldtack csc");
        // csc = dsr (csc + ldtack') — our ISOP writes it as a SOP
        // with the same three literals-per-path structure; verify
        // functional equivalence instead of syntax.
        let csc = model.signal_by_name("csc").unwrap();
        let equation = fns.equation(csc);
        // Paper function: csc' = dsr ∧ (csc ∨ ¬ldtack).
        let dsr = model.signal_by_name("dsr").unwrap().index() as u32;
        let ldtack = model.signal_by_name("ldtack").unwrap().index() as u32;
        let csc_v = csc.index() as u32;
        let care = fns.care_set();
        let m = fns.manager();
        let paper = {
            let vd = m.var(dsr);
            let vc = m.var(csc_v);
            let nl = m.nvar(ldtack);
            let or = m.or(&vc, &nl);
            m.and(&vd, &or)
        };
        // Compare on the reachable codes only.
        let mut cover = m.constant(false);
        for cube in &equation.cubes {
            let mut c = m.constant(true);
            for &(v, pos) in &cube.literals {
                let lit = if pos { m.var(v) } else { m.nvar(v) };
                c = m.and(&c, &lit);
            }
            cover = m.or(&cover, &c);
        }
        let lhs = m.and(&cover, &care);
        let rhs = m.and(&paper, &care);
        assert_eq!(
            lhs, rhs,
            "csc function matches the paper on reachable codes"
        );
    }

    #[test]
    fn monotonicity_matches_normalcy() {
        // Resolved VME: dtack, lds, d are p-normal => monotonic; csc
        // is neither p- nor n-normal => binate.
        let model = vme_read_csc_resolved();
        let mut fns = NextStateFunctions::derive(&model, Default::default()).unwrap();
        for name in ["dtack", "lds", "d"] {
            let z = model.signal_by_name(name).unwrap();
            assert!(fns.is_monotonic(z), "{name} must be monotonic");
        }
        let csc = model.signal_by_name("csc").unwrap();
        assert!(!fns.is_monotonic(csc));
    }

    #[test]
    fn gc_covers_are_correct_on_every_reachable_state() {
        use stg::StateGraph;
        let model = vme_read_csc_resolved();
        let sg = StateGraph::build(&model, Default::default()).unwrap();
        let mut fns = NextStateFunctions::derive(&model, Default::default()).unwrap();
        let signals: Vec<Signal> = fns.signals().collect();
        for z in signals {
            let (set, reset) = fns.gc_covers(z);
            for s in sg.states() {
                let code = sg.code(s);
                let bits: Vec<bool> = code.bits().collect();
                let nxt = model.next_state(sg.marking(s), code, z);
                let set_v = set.eval(&|v| bits[v as usize]);
                let reset_v = reset.eval(&|v| bits[v as usize]);
                if !code.bit(z) && nxt {
                    assert!(set_v, "set must fire when z is excited to rise");
                }
                if !code.bit(z) && !nxt {
                    assert!(!set_v, "set must not fire when z stays low");
                }
                if code.bit(z) && !nxt {
                    assert!(reset_v, "reset must fire when z is excited to fall");
                }
                if code.bit(z) && nxt {
                    assert!(!reset_v, "reset must not fire when z stays high");
                }
            }
        }
    }

    #[test]
    fn gc_covers_are_no_larger_than_the_flat_equation() {
        let model = vme_read_csc_resolved();
        let mut fns = NextStateFunctions::derive(&model, Default::default()).unwrap();
        let csc = model.signal_by_name("csc").unwrap();
        let flat = fns.equation(csc).literal_count();
        let (set, reset) = fns.gc_covers(csc);
        assert!(set.literal_count() <= flat);
        assert!(reset.literal_count() <= flat);
    }

    #[test]
    fn counterflow_functions_cover_on_sets() {
        let model = counterflow_sym(2, 2);
        let mut fns = NextStateFunctions::derive(&model, Default::default()).unwrap();
        let signals: Vec<Signal> = fns.signals().collect();
        for z in signals {
            let eq = fns.equation(z);
            assert!(!eq.to_string().is_empty());
        }
    }
}
