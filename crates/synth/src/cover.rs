//! Cubes, covers and printable equations.

use std::fmt;

use stg::{Signal, Stg};

/// A product term: a conjunction of literals over signal variables
/// (`(var, true)` = positive literal, `(var, false)` = negated).
/// The empty cube is the constant 1.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Cube {
    /// Sorted literals.
    pub literals: Vec<(u32, bool)>,
}

impl Cube {
    /// Evaluates the cube under a code assignment.
    pub fn eval(&self, bit: &dyn Fn(u32) -> bool) -> bool {
        self.literals.iter().all(|&(v, pos)| bit(v) == pos)
    }

    /// Number of literals.
    pub fn len(&self) -> usize {
        self.literals.len()
    }

    /// Whether this is the constant-1 cube.
    pub fn is_empty(&self) -> bool {
        self.literals.is_empty()
    }

    fn render(&self, stg: &Stg) -> String {
        if self.literals.is_empty() {
            return "1".to_owned();
        }
        self.literals
            .iter()
            .map(|&(v, pos)| {
                let name = stg.signal_name(Signal::new(v as usize));
                if pos {
                    name.to_owned()
                } else {
                    format!("{name}'")
                }
            })
            .collect::<Vec<_>>()
            .join(" ")
    }
}

/// A named equation `signal = cover`, printable with the STG's signal
/// names (`'` marks negation, juxtaposition conjunction, `+`
/// disjunction) — the style of the paper's §6 equations.
#[derive(Clone)]
pub struct Equation<'a> {
    pub(crate) stg: &'a Stg,
    /// The defined signal.
    pub signal: Signal,
    /// The disjunction of cubes.
    pub cubes: Vec<Cube>,
}

impl Equation<'_> {
    /// Evaluates the cover under a code assignment.
    pub fn eval(&self, bit: &dyn Fn(u32) -> bool) -> bool {
        self.cubes.iter().any(|c| c.eval(bit))
    }

    /// Total number of literals (a crude area estimate).
    pub fn literal_count(&self) -> usize {
        self.cubes.iter().map(Cube::len).sum()
    }
}

impl fmt::Display for Equation<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let rhs = if self.cubes.is_empty() {
            "0".to_owned()
        } else {
            self.cubes
                .iter()
                .map(|c| c.render(self.stg))
                .collect::<Vec<_>>()
                .join(" + ")
        };
        write!(f, "{} = {}", self.stg.signal_name(self.signal), rhs)
    }
}

impl fmt::Debug for Equation<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Equation({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stg::{CodeVec, Edge, SignalKind, StgBuilder};

    fn two_signal_stg() -> Stg {
        let mut b = StgBuilder::new();
        let a = b.add_signal("a", SignalKind::Input);
        let c = b.add_signal("c", SignalKind::Output);
        let ap = b.edge(a, Edge::Rise);
        let cp = b.edge(c, Edge::Rise);
        let am = b.edge(a, Edge::Fall);
        let cm = b.edge(c, Edge::Fall);
        b.chain_cycle(&[ap, cp, am, cm]).unwrap();
        b.set_initial_code(CodeVec::zeros(2));
        b.build().unwrap()
    }

    #[test]
    fn cube_eval_and_render() {
        let stg = two_signal_stg();
        let cube = Cube {
            literals: vec![(0, true), (1, false)],
        };
        assert!(cube.eval(&|v| v == 0));
        assert!(!cube.eval(&|_| true));
        assert_eq!(cube.render(&stg), "a c'");
        assert_eq!(Cube { literals: vec![] }.render(&stg), "1");
    }

    #[test]
    fn equation_display() {
        let stg = two_signal_stg();
        let eq = Equation {
            stg: &stg,
            signal: Signal::new(1),
            cubes: vec![
                Cube {
                    literals: vec![(0, true)],
                },
                Cube {
                    literals: vec![(0, false), (1, true)],
                },
            ],
        };
        assert_eq!(eq.to_string(), "c = a + a' c");
        assert_eq!(eq.literal_count(), 3);
        assert!(eq.eval(&|v| v == 0));
        let empty = Equation {
            stg: &stg,
            signal: Signal::new(1),
            cubes: vec![],
        };
        assert_eq!(empty.to_string(), "c = 0");
    }
}
