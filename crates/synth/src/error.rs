//! Synthesis errors.

use std::error::Error;
use std::fmt;

use stg::Signal;

/// An error raised while deriving next-state functions.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SynthError {
    /// The state graph could not be built (inconsistent or too
    /// large).
    StateGraph(String),
    /// Two reachable states share a code but disagree on `Nxt_z` —
    /// the STG violates CSC with respect to this signal, so no
    /// next-state function exists.
    CodingConflict {
        /// The signal whose next-state value is ambiguous.
        signal: Signal,
    },
}

impl fmt::Display for SynthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthError::StateGraph(m) => write!(f, "state graph unavailable: {m}"),
            SynthError::CodingConflict { signal } => {
                write!(
                    f,
                    "no next-state function for signal {signal}: coding conflict"
                )
            }
        }
    }
}

impl Error for SynthError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = SynthError::CodingConflict {
            signal: Signal::new(2),
        };
        assert!(e.to_string().contains("coding conflict"));
        assert!(SynthError::StateGraph("boom".into())
            .to_string()
            .contains("boom"));
    }
}
