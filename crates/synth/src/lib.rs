//! Logic-synthesis back-end for STGs.
//!
//! The paper situates coding-conflict detection as step (a) of
//! STG-based synthesis; this crate provides the downstream step (c):
//! once CSC holds, every output/internal signal has a well-defined
//! boolean *next-state function* `Nxt_z : {0,1}^Z → {0,1}` over the
//! state codes, and the circuit implements it. We derive these
//! functions from the state graph as BDDs (unreachable codes are
//! don't-cares), extract irredundant sum-of-products covers with the
//! Minato-Morreale ISOP procedure, and analyse unateness — a cover is
//! implementable with monotonic gates (standard NAND/NOR/AOI/OAI
//! libraries without input inverters) exactly when the function is
//! unate in every support variable, which is the §6 normalcy story
//! made executable.
//!
//! # Examples
//!
//! Reproduce the paper's equations for the CSC-resolved VME
//! controller (its §6: `dtack = d`, `lds = d + csc`, …) and observe
//! that `csc`'s own function is binate (non-monotonic):
//!
//! ```
//! use stg::gen::vme::vme_read_csc_resolved;
//! use synth::NextStateFunctions;
//!
//! # fn main() -> Result<(), synth::SynthError> {
//! let model = vme_read_csc_resolved();
//! let mut fns = NextStateFunctions::derive(&model, Default::default())?;
//! let dtack = model.signal_by_name("dtack").unwrap();
//! assert_eq!(fns.equation(dtack).to_string(), "dtack = d");
//! let csc = model.signal_by_name("csc").unwrap();
//! assert!(!fns.is_monotonic(csc)); // binate, as the paper observes
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod cover;
mod error;
mod isop;
mod nextstate;
mod unate;

pub use cover::{Cube, Equation};
pub use error::SynthError;
pub use nextstate::NextStateFunctions;
pub use unate::Unateness;
