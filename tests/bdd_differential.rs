//! Differential validation of the BDD node manager: garbage
//! collection (forced every N allocations vs off) and sifting
//! reordering (on vs off) must never change a symbolic answer — state
//! counts, conflict-pair counts, USC/CSC witnesses, per-signal
//! normalcy verdicts and normalcy witnesses all have to come back
//! bit-identical across manager configurations, on every Table 1
//! family and for all three properties.
//!
//! Witness identity across configurations is only possible because
//! the symbolic engine decodes witnesses through the manager's
//! order-independent `first_sat` (the lexicographically minimal
//! satisfying assignment reading variable 0 first), so a reordered or
//! collected manager still picks the same concrete state pair.

use stg_coding_conflicts::stg::gen::counterflow::{counterflow_asym, counterflow_sym};
use stg_coding_conflicts::stg::gen::duplex::{dup_4ph, dup_mod};
use stg_coding_conflicts::stg::gen::ring::{eager_ring, lazy_ring};
use stg_coding_conflicts::stg::{Signal, Stg};
use stg_coding_conflicts::symbolic::{
    NormalcyPairWitness, SymbolicChecker, SymbolicOptions, SymbolicWitness,
};

/// One Table 1 family at a size the debug-mode symbolic engine
/// finishes quickly; the benchmark harness covers the full-size rows.
fn families() -> Vec<(&'static str, Stg)> {
    vec![
        ("LAZYRING", lazy_ring(4)),
        ("RING", eager_ring(3)),
        ("DUP-4PH", dup_4ph(1, false)),
        ("DUP-MOD", dup_mod(2)),
        ("CF-SYM", counterflow_sym(2, 3)),
        ("CF-ASYM", counterflow_asym(3, 2)),
    ]
}

/// Everything a symbolic run can answer, collected under one manager
/// configuration. `bdd_nodes` is deliberately absent: peak memory is
/// exactly what the configurations are allowed to change.
#[derive(Debug, PartialEq)]
struct Answers {
    num_states: f64,
    usc_pairs: f64,
    csc_pairs: f64,
    usc_witness: Option<SymbolicWitness>,
    csc_witness: Option<SymbolicWitness>,
    /// `(signal, p_normal, n_normal)` per circuit-driven signal.
    normalcy: Vec<(Signal, bool, bool)>,
    /// Witness of the first non-normal signal, when one exists.
    normalcy_witness: Option<NormalcyPairWitness>,
}

/// Runs the full battery (USC + CSC + normalcy, with witnesses) under
/// `options`, optionally forcing an aggressive sifting threshold.
fn answers(stg: &Stg, options: SymbolicOptions, reorder_threshold: Option<usize>) -> Answers {
    let mut checker = SymbolicChecker::with_options(stg, options);
    if reorder_threshold.is_some() {
        checker.set_auto_reorder_threshold(reorder_threshold);
    }
    let report = checker.analyse();
    let usc_witness = checker.usc_witness();
    let csc_witness = checker.csc_witness();
    let locals: Vec<Signal> = stg.local_signals().collect();
    let normalcy: Vec<(Signal, bool, bool)> = locals
        .iter()
        .map(|&z| {
            let (p, n) = checker.normalcy_of(z);
            (z, p, n)
        })
        .collect();
    let normalcy_witness = normalcy
        .iter()
        .find(|(_, p, n)| !p && !n)
        .and_then(|&(z, _, _)| checker.normalcy_witness(z));
    Answers {
        num_states: report.num_states,
        usc_pairs: report.usc_pairs,
        csc_pairs: report.csc_pairs,
        usc_witness,
        csc_witness,
        normalcy,
        normalcy_witness,
    }
}

const UNMANAGED: SymbolicOptions = SymbolicOptions {
    partitioned: true,
    gc: false,
    auto_reorder: false,
    gc_every: None,
};

#[test]
fn forced_gc_never_changes_an_answer() {
    for (name, stg) in families() {
        let baseline = answers(&stg, UNMANAGED, None);
        // GC forced at every 512th allocation: collections land in
        // the middle of fixpoint iterations and conflict-pair
        // constructions, not just at tidy boundaries.
        let collected = answers(
            &stg,
            SymbolicOptions {
                gc: true,
                gc_every: Some(512),
                ..UNMANAGED
            },
            None,
        );
        assert_eq!(baseline, collected, "{name}: GC changed an answer");
    }
}

#[test]
fn sifting_never_changes_an_answer() {
    for (name, stg) in families() {
        let baseline = answers(&stg, UNMANAGED, None);
        // Sifting triggered from 256 live nodes: every family except
        // the most trivial reorders at least once mid-analysis.
        let sifted = answers(
            &stg,
            SymbolicOptions {
                auto_reorder: true,
                ..UNMANAGED
            },
            Some(256),
        );
        assert_eq!(baseline, sifted, "{name}: sifting changed an answer");
    }
}

#[test]
fn gc_and_sifting_together_never_change_an_answer() {
    for (name, stg) in families() {
        let baseline = answers(&stg, UNMANAGED, None);
        let managed = answers(
            &stg,
            SymbolicOptions {
                gc: true,
                gc_every: Some(512),
                auto_reorder: true,
                ..UNMANAGED
            },
            Some(256),
        );
        assert_eq!(baseline, managed, "{name}: GC + sifting changed an answer");
    }
}

/// The aggressive configurations above must actually exercise the
/// manager — a differential suite whose stressed leg never collects
/// or reorders proves nothing.
#[test]
fn the_stressed_configurations_really_collect_and_reorder() {
    let stg = counterflow_asym(3, 2);
    let mut checker = SymbolicChecker::with_options(
        &stg,
        SymbolicOptions {
            gc: true,
            gc_every: Some(512),
            auto_reorder: true,
            ..UNMANAGED
        },
    );
    checker.set_auto_reorder_threshold(Some(256));
    let _ = checker.analyse();
    let stats = checker.bdd_stats();
    assert!(stats.gc_runs > 0, "no collection ran: {stats:?}");
    assert!(stats.reorder_passes > 0, "no sifting pass ran: {stats:?}");
}
