//! Cross-engine validation: the unfolding + IP checker, the explicit
//! state graph and the symbolic BDD engine must agree on every
//! generated model, including randomly generated consistent STGs.

use stg_coding_conflicts::csc_core::{CheckRequest, Engine, Property};
use stg_coding_conflicts::stg::gen::arbiter::mutex_arbiter;
use stg_coding_conflicts::stg::gen::counterflow::{counterflow_asym, counterflow_sym};
use stg_coding_conflicts::stg::gen::duplex::{dup_4ph, dup_mod};
use stg_coding_conflicts::stg::gen::pipeline::muller_pipeline;
use stg_coding_conflicts::stg::gen::random::{random_stg, RandomStgConfig};
use stg_coding_conflicts::stg::gen::ring::{eager_ring, lazy_ring};
use stg_coding_conflicts::stg::gen::vme::{vme_master, vme_read, vme_read_csc_resolved};
use stg_coding_conflicts::stg::Stg;

const ENGINES: [Engine; 3] = [
    Engine::UnfoldingIlp,
    Engine::ExplicitStateGraph,
    Engine::SymbolicBdd,
];

fn assert_agreement(stg: &Stg, label: &str) {
    for property in [Property::Usc, Property::Csc] {
        let verdicts: Vec<bool> = ENGINES
            .iter()
            .map(|&e| {
                CheckRequest::new(stg, property)
                    .engine(e)
                    .run_bool()
                    .expect("engine run succeeds")
            })
            .collect();
        assert!(
            verdicts.windows(2).all(|w| w[0] == w[1]),
            "{label}: engines disagree on {property:?}: {verdicts:?}"
        );
    }
}

#[test]
fn generator_families_agree() {
    let cases: Vec<(&str, Stg)> = vec![
        ("vme", vme_read()),
        ("vme_resolved", vme_read_csc_resolved()),
        ("vme_master", vme_master()),
        ("lazy_ring_2", lazy_ring(2)),
        ("lazy_ring_4", lazy_ring(4)),
        ("eager_ring_2", eager_ring(2)),
        ("eager_ring_3", eager_ring(3)),
        ("dup_1", dup_4ph(1, false)),
        ("dup_1r", dup_4ph(1, true)),
        ("dup_2", dup_4ph(2, false)),
        ("dup_2r", dup_4ph(2, true)),
        ("dup_mod_1", dup_mod(1)),
        ("dup_mod_3", dup_mod(3)),
        ("cf_sym_2_2", counterflow_sym(2, 2)),
        ("cf_sym_3_2", counterflow_sym(3, 2)),
        ("cf_asym", counterflow_asym(2, 2)),
        ("pipeline_2", muller_pipeline(2)),
        ("pipeline_4", muller_pipeline(4)),
        ("arbiter_2", mutex_arbiter(2)),
        ("arbiter_3", mutex_arbiter(3)),
    ];
    for (label, stg) in &cases {
        assert_agreement(stg, label);
    }
}

#[test]
fn random_stgs_agree() {
    for seed in 0..40 {
        let config = RandomStgConfig {
            signals: 4,
            sync_cycles: 3,
            max_cycle_len: 4,
            splits: seed as usize % 3,
            percent_high: 30,
        };
        let stg = random_stg(&config, seed);
        assert_agreement(&stg, &format!("random seed {seed}"));
    }
}

#[test]
fn random_larger_stgs_agree_on_unfolding_vs_explicit() {
    // Bigger instances: skip the (slow, naive) symbolic engine.
    for seed in 0..15 {
        let config = RandomStgConfig {
            signals: 7,
            sync_cycles: 5,
            max_cycle_len: 5,
            splits: 2,
            percent_high: 20,
        };
        let stg = random_stg(&config, 1000 + seed);
        for property in [Property::Usc, Property::Csc] {
            let check = |e| CheckRequest::new(&stg, property).engine(e).run_bool();
            let a = check(Engine::UnfoldingIlp).unwrap();
            let b = check(Engine::ExplicitStateGraph).unwrap();
            assert_eq!(a, b, "seed {seed}, {property:?}");
        }
    }
}

#[test]
fn normalcy_agreement_on_small_models() {
    for (label, stg) in [
        ("vme_resolved", vme_read_csc_resolved()),
        ("vme_master", vme_master()),
        ("cf", counterflow_sym(2, 2)),
        ("dup_1r", dup_4ph(1, true)),
        ("pipeline_2", muller_pipeline(2)),
    ] {
        let check = |e| {
            CheckRequest::new(&stg, Property::Normalcy)
                .engine(e)
                .run_bool()
        };
        let a = check(Engine::UnfoldingIlp).unwrap();
        let b = check(Engine::ExplicitStateGraph).unwrap();
        assert_eq!(a, b, "{label}");
    }
}
