//! Differential validation of the structural concurrency relation
//! against the explicit state graph, plus the structure-gated check
//! pipeline on the conflict-free half of the Table 1 roster.
//!
//! Soundness is unconditional: the Kovalyov–Esparza fixed-point must
//! never miss a pair that is explicitly concurrent in some reachable
//! marking — a missed pair would let the resolver prune a host pair
//! it must not, or the lock relation claim a serialisation that does
//! not exist. Exactness holds on live free-choice nets, which the
//! test checks on every seed whose net is free-choice and provably
//! live (strongly connected reachability graph, every transition
//! enabled somewhere).

use std::collections::HashSet;

use petri::ExploreLimits;
use stg_coding_conflicts::csc_core::{CheckRequest, Engine, Property};
use stg_coding_conflicts::lint::structure::{analyse, Approximation};
use stg_coding_conflicts::stg::gen::random::{random_stg, RandomStgConfig};
use stg_coding_conflicts::stg::{StateGraph, Stg};

/// The explicitly-observed concurrency over the reachable markings:
/// place pairs marked simultaneously somewhere, and transition pairs
/// enabled as a step (both enabled, disjoint presets — the safe-net
/// step condition) somewhere.
struct ExplicitConcurrency {
    place_pairs: HashSet<(usize, usize)>,
    transition_pairs: HashSet<(usize, usize)>,
}

fn explicit_concurrency(stg: &Stg, sg: &StateGraph) -> ExplicitConcurrency {
    let net = stg.net();
    let mut place_pairs = HashSet::new();
    let mut transition_pairs = HashSet::new();
    for s in sg.states() {
        let m = sg.marking(s);
        let marked: Vec<usize> = m.marked_places().map(|p| p.index()).collect();
        for (i, &a) in marked.iter().enumerate() {
            for &b in &marked[i + 1..] {
                place_pairs.insert((a.min(b), a.max(b)));
            }
        }
        let enabled: Vec<_> = net.enabled(m);
        for (i, &t) in enabled.iter().enumerate() {
            for &u in &enabled[i + 1..] {
                let disjoint = net.preset(t).iter().all(|p| !net.preset(u).contains(p));
                if disjoint {
                    let (x, y) = (t.index().min(u.index()), t.index().max(u.index()));
                    transition_pairs.insert((x, y));
                }
            }
        }
    }
    ExplicitConcurrency {
        place_pairs,
        transition_pairs,
    }
}

/// A sufficient liveness check on the explicit graph: the
/// reachability graph is strongly connected and every transition is
/// enabled in at least one reachable marking. (Sufficient, not
/// necessary — seeds failing it merely skip the exactness half.)
fn provably_live(stg: &Stg, sg: &StateGraph) -> bool {
    let net = stg.net();
    let reach = sg.reachability();
    let n = sg.num_states();
    let ids: Vec<_> = sg.states().collect();
    // Forward closure from the initial state (index 0 by
    // construction of the exploration).
    let mut fwd = vec![false; n];
    let mut stack = vec![0usize];
    fwd[0] = true;
    while let Some(s) = stack.pop() {
        for &(_, next) in reach.successors(ids[s]) {
            if !fwd[next.index()] {
                fwd[next.index()] = true;
                stack.push(next.index());
            }
        }
    }
    if !fwd.iter().all(|&r| r) {
        return false;
    }
    // Backward closure: invert the edges once.
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &s in &ids {
        for &(_, next) in reach.successors(s) {
            preds[next.index()].push(s.index());
        }
    }
    let mut bwd = vec![false; n];
    let mut stack = vec![0usize];
    bwd[0] = true;
    while let Some(s) = stack.pop() {
        for &p in &preds[s] {
            if !bwd[p] {
                bwd[p] = true;
                stack.push(p);
            }
        }
    }
    if !bwd.iter().all(|&r| r) {
        return false;
    }
    let mut fired = vec![false; net.num_transitions()];
    for &s in &ids {
        for &(t, _) in reach.successors(s) {
            fired[t.index()] = true;
        }
    }
    fired.iter().all(|&f| f)
}

/// Structural vs explicit concurrency over random consistent STGs:
/// the structural relation must contain every explicitly concurrent
/// pair on every seed, and coincide with it on provably live
/// free-choice seeds.
#[test]
fn random_stgs_structural_concurrency_is_sound() {
    let mut exact_checked = 0u32;
    for seed in 0..50u64 {
        let config = RandomStgConfig {
            signals: 4,
            sync_cycles: 3,
            max_cycle_len: 4,
            splits: seed as usize % 3,
            percent_high: 30,
        };
        let stg = random_stg(&config, seed);
        let report = analyse(&stg);
        let sg = StateGraph::build(
            &stg,
            ExploreLimits {
                max_states: 200_000,
                token_bound: 1,
            },
        )
        .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        let explicit = explicit_concurrency(&stg, &sg);

        let net = stg.net();
        // Soundness: no explicitly concurrent pair may be missed.
        for &(a, b) in &explicit.place_pairs {
            assert!(
                report
                    .concurrency
                    .places_concurrent(petri::PlaceId::new(a), petri::PlaceId::new(b)),
                "seed {seed}: places `{}` and `{}` are simultaneously marked \
                 but structurally non-concurrent",
                net.place_name(petri::PlaceId::new(a)),
                net.place_name(petri::PlaceId::new(b)),
            );
        }
        for &(t, u) in &explicit.transition_pairs {
            assert!(
                report.concurrency.transitions_concurrent(
                    petri::TransitionId::new(t),
                    petri::TransitionId::new(u)
                ),
                "seed {seed}: transitions `{}` and `{}` fire as a step \
                 but are structurally non-concurrent",
                net.transition_name(petri::TransitionId::new(t)),
                net.transition_name(petri::TransitionId::new(u)),
            );
        }

        // Exactness on provably live free-choice seeds: the
        // structural relation may not contain a place pair the state
        // graph never marks together.
        if report.classes.free_choice && provably_live(&stg, &sg) {
            assert_eq!(
                report.concurrency.level(),
                Approximation::ExactForLiveFreeChoice,
                "seed {seed}"
            );
            exact_checked += 1;
            for a in 0..net.num_places() {
                for b in a + 1..net.num_places() {
                    if report
                        .concurrency
                        .places_concurrent(petri::PlaceId::new(a), petri::PlaceId::new(b))
                    {
                        assert!(
                            explicit.place_pairs.contains(&(a, b)),
                            "seed {seed}: live free-choice net, but places `{}` and `{}` \
                             are structurally concurrent and never marked together",
                            net.place_name(petri::PlaceId::new(a)),
                            net.place_name(petri::PlaceId::new(b)),
                        );
                    }
                }
            }
        }
    }
    // 9 of the 50 seeds are provably-live free-choice under this
    // config; the floor just keeps the exactness half from going
    // vacuous if the generator changes.
    assert!(
        exact_checked >= 5,
        "the exactness half must not be vacuous: only {exact_checked} live \
         free-choice seeds"
    );
}

/// The conflict-free Table 1 families keep their verdicts across all
/// six engines when the structure pass is enabled on the request —
/// class gating reroutes work, never answers.
#[test]
fn roster_conflict_free_verdicts_survive_structure_gating() {
    const ENGINES: [Engine; 6] = [
        Engine::UnfoldingIlp,
        Engine::ExplicitStateGraph,
        Engine::SymbolicBdd,
        Engine::Portfolio,
        Engine::Race,
        Engine::Cegar,
    ];
    for model in bench_harness::models().into_iter().filter(|m| m.expect_csc) {
        for engine in ENGINES {
            let run = CheckRequest::new(&model.stg, Property::Csc)
                .engine(engine)
                .structure(true)
                .run()
                .unwrap_or_else(|e| panic!("{} / {}: {e}", model.name, engine.name()));
            assert_eq!(
                run.verdict.holds(),
                Some(true),
                "{} / {}: conflict-free family must stay proved with the \
                 structure pass enabled",
                model.name,
                engine.name()
            );
            assert!(
                run.report.structure.is_some(),
                "{} / {}: the structure summary must ride along",
                model.name,
                engine.name()
            );
        }
    }
}
