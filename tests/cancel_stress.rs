//! Concurrent-cancellation stress: a `CancelToken` flipped mid-check
//! must stop every engine — including the racing portfolio, whose
//! four racers each derive their own guard from the same token —
//! with `Unknown(Cancelled)` within a bounded delay.
//!
//! Each engine gets an adversarial input it would otherwise chew on
//! for seconds to minutes, so a conclusive verdict before the cancel
//! fires is not a realistic outcome.

use std::sync::mpsc;
use std::thread;
use std::time::{Duration, Instant};

use stg_coding_conflicts::csc_core::{
    Budget, CancelToken, CheckRequest, Engine, ExhaustionReason, Property, Verdict,
};
use stg_coding_conflicts::stg::gen::counterflow::{counterflow_asym, counterflow_sym};
use stg_coding_conflicts::stg::Stg;

/// How long after the check starts the token is flipped.
const CANCEL_AFTER: Duration = Duration::from_millis(50);
/// The cancellation must be observed within this much wall-clock
/// (covers the poll granularity of every engine plus CI slack).
const OBSERVE_WITHIN: Duration = Duration::from_secs(10);

/// An input the given engine cannot decide in seconds.
fn adversarial_input(engine: Engine) -> Stg {
    match engine {
        // The absence proof explodes in IP solver propagations.
        Engine::UnfoldingIlp => counterflow_asym(8, 2),
        // Millions of reachable states.
        Engine::ExplicitStateGraph => counterflow_asym(8, 2),
        // Single BDD operations run for minutes on this input.
        Engine::SymbolicBdd => counterflow_sym(4, 4),
        // The integer search over the state equation branches for
        // minutes; cancellation is polled per pivot and per node.
        Engine::Cegar => counterflow_sym(4, 4),
        // All four racers must be slow, or one would win before the
        // cancel fires.
        Engine::Portfolio | Engine::Race => counterflow_asym(8, 2),
    }
}

/// Runs `engine` on its adversarial input and flips the token from a
/// second thread mid-flight.
fn cancelled_run(engine: Engine) -> (Verdict, Duration) {
    let stg = adversarial_input(engine);
    let token = CancelToken::new();
    let budget = Budget::unlimited().with_cancel(token.clone());
    let canceller = thread::spawn(move || {
        thread::sleep(CANCEL_AFTER);
        token.cancel();
    });
    let start = Instant::now();
    let run = CheckRequest::new(&stg, Property::Csc)
        .engine(engine)
        .budget(budget)
        .run()
        .expect("engine ran");
    let elapsed = start.elapsed();
    canceller.join().expect("canceller thread");
    (run.verdict, elapsed)
}

#[test]
fn mid_flight_cancel_stops_each_engine_within_bounded_delay() {
    for engine in [
        Engine::UnfoldingIlp,
        Engine::ExplicitStateGraph,
        Engine::SymbolicBdd,
        Engine::Cegar,
    ] {
        let (verdict, elapsed) = cancelled_run(engine);
        assert_eq!(
            verdict,
            Verdict::Unknown(ExhaustionReason::Cancelled),
            "{engine:?}"
        );
        assert!(
            elapsed < CANCEL_AFTER + OBSERVE_WITHIN,
            "{engine:?} took {elapsed:?} to observe the cancel"
        );
    }
}

/// The racing portfolio propagates one external cancel into all three
/// racer threads: the race as a whole must come back cancelled, not
/// hang on a racer that missed the flag.
#[test]
fn mid_flight_cancel_stops_the_race() {
    let (verdict, elapsed) = cancelled_run(Engine::Race);
    assert_eq!(verdict, Verdict::Unknown(ExhaustionReason::Cancelled));
    assert!(
        elapsed < CANCEL_AFTER + OBSERVE_WITHIN,
        "race took {elapsed:?} to observe the cancel"
    );
}

/// All engines cancelled concurrently — one checking thread plus one
/// cancelling thread per engine, all in flight at once — each still
/// reports `Unknown(Cancelled)` in bounded time.
#[test]
fn concurrent_cancellations_do_not_interfere() {
    let engines = [
        Engine::UnfoldingIlp,
        Engine::ExplicitStateGraph,
        Engine::SymbolicBdd,
        Engine::Cegar,
        Engine::Race,
    ];
    let (tx, rx) = mpsc::channel();
    thread::scope(|scope| {
        for engine in engines {
            let tx = tx.clone();
            scope.spawn(move || {
                let _ = tx.send((engine, cancelled_run(engine)));
            });
        }
    });
    drop(tx);
    let mut seen = 0;
    for (engine, (verdict, elapsed)) in rx {
        seen += 1;
        assert_eq!(
            verdict,
            Verdict::Unknown(ExhaustionReason::Cancelled),
            "{engine:?}"
        );
        assert!(
            elapsed < CANCEL_AFTER + OBSERVE_WITHIN,
            "{engine:?} took {elapsed:?}"
        );
    }
    assert_eq!(seen, engines.len());
}
