//! Signal hiding and its effect on coding properties: hiding the
//! state signal of a resolved model re-introduces the conflict it
//! resolved, and deadlock structure obeys the classical siphon lemma.

use stg_coding_conflicts::csc_core::{CheckRequest, Engine, Property};
use stg_coding_conflicts::petri::siphons;
use stg_coding_conflicts::resolve::{resolve_csc, ResolveOutcome};
use stg_coding_conflicts::stg::gen::random::{random_stg, RandomStgConfig};
use stg_coding_conflicts::stg::gen::vme::vme_read_csc_resolved;
use stg_coding_conflicts::stg::StateGraph;

#[test]
fn hiding_the_state_signal_reintroduces_the_conflict() {
    let resolved = vme_read_csc_resolved();
    let sg = StateGraph::build(&resolved, Default::default()).unwrap();
    assert!(sg.satisfies_csc(&resolved));
    let csc = resolved.signal_by_name("csc").unwrap();
    let hidden = resolved.with_signal_hidden(csc);
    let sg = StateGraph::build(&hidden, Default::default()).unwrap();
    assert!(
        !sg.satisfies_csc(&hidden),
        "without csc in the alphabet the two states collide again"
    );
}

#[test]
fn engines_agree_on_hidden_signal_models() {
    let resolved = vme_read_csc_resolved();
    let csc = resolved.signal_by_name("csc").unwrap();
    let hidden = resolved.with_signal_hidden(csc);
    for property in [Property::Usc, Property::Csc] {
        let verdicts: Vec<bool> = [
            Engine::UnfoldingIlp,
            Engine::ExplicitStateGraph,
            Engine::SymbolicBdd,
        ]
        .iter()
        .map(|&e| {
            CheckRequest::new(&hidden, property)
                .engine(e)
                .run_bool()
                .unwrap()
        })
        .collect();
        assert!(
            verdicts.windows(2).all(|w| w[0] == w[1]),
            "{property:?}: {verdicts:?}"
        );
    }
}

#[test]
fn resolver_makes_progress_on_a_hidden_model() {
    // Hide the resolved VME's state signal. The dummified τ
    // transitions create adjacent same-code states that a *greedy*
    // single-signal search cannot always separate completely (a known
    // local optimum of the generate-and-test resolver); it must still
    // strictly reduce the conflict count, and a full resolution — if
    // claimed — must verify.
    let resolved = vme_read_csc_resolved();
    let csc = resolved.signal_by_name("csc").unwrap();
    let hidden = resolved.with_signal_hidden(csc);
    let initial = StateGraph::build(&hidden, Default::default())
        .unwrap()
        .csc_conflict_pairs(&hidden)
        .len();
    match resolve_csc(&hidden, Default::default()).unwrap() {
        ResolveOutcome::Resolved { stg: fixed, .. } => {
            let sg = StateGraph::build(&fixed, Default::default()).unwrap();
            assert!(sg.satisfies_csc(&fixed));
        }
        ResolveOutcome::Failed { remaining, .. } => {
            assert!(remaining < initial, "the resolver must make progress");
        }
        ResolveOutcome::AlreadySatisfied => unreachable!("hidden model conflicts"),
    }
}

#[test]
fn random_deadlock_empties_are_siphons() {
    let mut observed = 0usize;
    for seed in 0..60 {
        let config = RandomStgConfig {
            signals: 4,
            sync_cycles: 4,
            max_cycle_len: 4,
            splits: 0,
            percent_high: 40,
        };
        let model = random_stg(&config, 7_000 + seed);
        let sg = StateGraph::build(&model, Default::default()).unwrap();
        for s in sg.states() {
            if model.net().is_deadlock(sg.marking(s)) {
                let empty = siphons::unmarked_places(model.net(), sg.marking(s));
                assert!(
                    siphons::is_siphon(model.net(), &empty),
                    "seed {seed}: deadlock empties must form a siphon"
                );
                observed += 1;
            }
        }
    }
    assert!(observed > 0, "some random models should deadlock");
}
