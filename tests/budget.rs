//! Budget semantics: exhausted engines must answer `Unknown` — never
//! a wrong `Holds`/`Violated` — within the wall-clock allowance, and
//! the portfolio must still match the explicit oracle when resources
//! are plentiful.

use std::time::{Duration, Instant};

use bench_harness::models;
use stg_coding_conflicts::csc_core::{
    Budget, CancelToken, CheckRequest, Engine, ExhaustionReason, Property, Verdict,
};
use stg_coding_conflicts::stg::gen::counterflow::counterflow_sym;

const ALL_ENGINES: [Engine; 6] = [
    Engine::UnfoldingIlp,
    Engine::ExplicitStateGraph,
    Engine::SymbolicBdd,
    Engine::Cegar,
    Engine::Portfolio,
    Engine::Race,
];

type ReasonCheck = fn(&ExhaustionReason) -> bool;

/// Each resource cap trips its own engine into the matching
/// `ExhaustionReason` on a model the engine could otherwise decide.
#[test]
fn tiny_budgets_yield_unknown_with_the_right_reason() {
    let stg = counterflow_sym(3, 3);
    let cases: [(Engine, Budget, ReasonCheck); 4] = [
        (
            Engine::UnfoldingIlp,
            Budget::unlimited().with_max_events(4),
            |r| matches!(r, ExhaustionReason::EventLimit(4)),
        ),
        (
            Engine::UnfoldingIlp,
            Budget::unlimited().with_max_solver_steps(1),
            |r| matches!(r, ExhaustionReason::SolverStepLimit(1)),
        ),
        (
            Engine::ExplicitStateGraph,
            Budget::unlimited().with_max_states(4),
            |r| matches!(r, ExhaustionReason::StateLimit(4)),
        ),
        (
            Engine::SymbolicBdd,
            Budget::unlimited().with_max_bdd_nodes(64),
            |r| matches!(r, ExhaustionReason::BddNodeLimit(64)),
        ),
    ];
    for (engine, budget, expected) in cases {
        let run = CheckRequest::new(&stg, Property::Csc)
            .engine(engine)
            .budget(budget)
            .run()
            .unwrap();
        match &run.verdict {
            Verdict::Unknown(reason) => {
                assert!(expected(reason), "{engine:?}: wrong reason {reason:?}")
            }
            other => panic!("{engine:?}: expected Unknown, got {other:?}"),
        }
        assert_eq!(run.report.engine, engine.name());
    }
}

/// A token cancelled before the call starts stops every engine at its
/// first poll.
#[test]
fn pre_cancelled_token_stops_every_engine() {
    let stg = counterflow_sym(3, 3);
    let token = CancelToken::new();
    token.cancel();
    let budget = Budget::unlimited().with_cancel(token);
    for engine in ALL_ENGINES {
        let run = CheckRequest::new(&stg, Property::Csc)
            .engine(engine)
            .budget(budget.clone())
            .run()
            .unwrap();
        assert_eq!(
            run.verdict,
            Verdict::Unknown(ExhaustionReason::Cancelled),
            "{engine:?}"
        );
    }
}

/// An already-expired deadline yields `Unknown(DeadlineExpired)` from
/// every engine, near-instantly, with the report naming the engine.
#[test]
fn expired_deadline_yields_unknown_for_every_engine() {
    let stg = counterflow_sym(3, 3);
    let budget = Budget::unlimited().with_deadline(Duration::ZERO);
    for engine in ALL_ENGINES {
        let start = Instant::now();
        let run = CheckRequest::new(&stg, Property::Csc)
            .engine(engine)
            .budget(budget.clone())
            .run()
            .unwrap();
        let elapsed = start.elapsed();
        assert_eq!(
            run.verdict,
            Verdict::Unknown(ExhaustionReason::DeadlineExpired),
            "{engine:?}"
        );
        assert_eq!(run.report.engine, engine.name());
        assert!(elapsed < Duration::from_secs(1), "{engine:?}: {elapsed:?}");
    }
}

/// The acceptance-criterion scenario: the symbolic engine — whose
/// single BDD operations can run for minutes on this input — must
/// come back within ~2× a 100 ms deadline, inconclusive but with its
/// partial node count reported.
#[test]
fn symbolic_respects_deadline_on_adversarial_input() {
    let stg = counterflow_sym(4, 4);
    let deadline = Duration::from_millis(100);
    let budget = Budget::unlimited().with_deadline(deadline);
    let start = Instant::now();
    let run = CheckRequest::new(&stg, Property::Csc)
        .engine(Engine::SymbolicBdd)
        .budget(budget)
        .run()
        .unwrap();
    let elapsed = start.elapsed();
    assert_eq!(
        run.verdict,
        Verdict::Unknown(ExhaustionReason::DeadlineExpired)
    );
    // ~2× the allowance (plus scheduler slack); without manager-level
    // interruption this input takes minutes.
    assert!(
        elapsed < deadline * 2 + Duration::from_millis(100),
        "{elapsed:?}"
    );
    assert_eq!(run.report.engine, "symbolic");
    assert!(run.report.bdd_nodes.unwrap() > 2, "partial work reported");
    assert!(run.report.elapsed >= deadline);
}

/// With a generous budget, the portfolio reproduces the explicit
/// oracle's CSC verdict on every Table 1 roster model.
#[test]
fn portfolio_matches_expected_csc_on_table1_roster() {
    let budget = Budget::unlimited().with_deadline(Duration::from_secs(120));
    for model in models() {
        let run = CheckRequest::new(&model.stg, Property::Csc)
            .engine(Engine::Portfolio)
            .budget(budget.clone())
            .run()
            .unwrap();
        assert_eq!(
            run.verdict.holds(),
            Some(model.expect_csc),
            "{}: {:?}",
            model.name,
            run.verdict
        );
    }
}

/// The CEGAR engine under a deadline that lands mid-loop: the
/// outermost LP relaxation, the branch-and-bound layer and the
/// token-game replay all poll the same guard, so the run must come
/// back inconclusive (never a wrong verdict) within ~2× the
/// allowance.
#[test]
fn cegar_respects_deadline_on_adversarial_input() {
    let stg = counterflow_sym(4, 4);
    let deadline = Duration::from_millis(100);
    let budget = Budget::unlimited().with_deadline(deadline);
    let start = Instant::now();
    let run = CheckRequest::new(&stg, Property::Csc)
        .engine(Engine::Cegar)
        .budget(budget)
        .run()
        .unwrap();
    let elapsed = start.elapsed();
    assert_eq!(
        run.verdict,
        Verdict::Unknown(ExhaustionReason::DeadlineExpired)
    );
    assert!(
        elapsed < deadline * 2 + Duration::from_millis(100),
        "{elapsed:?}"
    );
    assert_eq!(run.report.engine, "cegar");
    assert_eq!(run.report.prefix_events_built, Some(0));
}

/// A zero branch-node allowance starves every CEGAR target on a
/// conflicted model the LP relaxation cannot prove: the verdict must
/// degrade to `Unknown(SolverStepLimit)` — not to a wrong `Holds`.
#[test]
fn cegar_with_zero_branch_nodes_abstains() {
    let stg = stg_coding_conflicts::stg::gen::vme::vme_read();
    let budget = Budget::unlimited().with_max_solver_steps(0);
    for property in [Property::Usc, Property::Csc] {
        let run = CheckRequest::new(&stg, property)
            .engine(Engine::Cegar)
            .budget(budget.clone())
            .run()
            .unwrap();
        assert!(
            matches!(
                run.verdict,
                Verdict::Unknown(ExhaustionReason::SolverStepLimit(_))
            ),
            "{property:?}: {:?}",
            run.verdict
        );
    }
}
