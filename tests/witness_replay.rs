//! Every witness produced by any checker must replay on the original
//! STG — the paper's "execution paths leading to an encoding
//! conflict" claim, validated end to end.

use stg_coding_conflicts::csc_core::{CheckOutcome, Checker};
use stg_coding_conflicts::stg::gen::duplex::{dup_4ph, dup_mod};
use stg_coding_conflicts::stg::gen::random::{random_stg, RandomStgConfig};
use stg_coding_conflicts::stg::gen::ring::lazy_ring;
use stg_coding_conflicts::stg::gen::vme::vme_read;
use stg_coding_conflicts::stg::Stg;

fn conflicted_models() -> Vec<Stg> {
    vec![
        vme_read(),
        lazy_ring(2),
        lazy_ring(4),
        dup_4ph(1, false),
        dup_4ph(3, false),
        dup_mod(2),
        dup_mod(5),
    ]
}

#[test]
fn usc_witnesses_replay() {
    for stg in conflicted_models() {
        let checker = Checker::new(&stg).unwrap();
        let CheckOutcome::Conflict(w) = checker.check_usc().unwrap() else {
            panic!("model must have a USC conflict");
        };
        assert!(w.replay(&stg));
        // Both configurations are genuine prefix configurations.
        assert!(checker.prefix().is_configuration(&w.config1));
        assert!(checker.prefix().is_configuration(&w.config2));
    }
}

#[test]
fn csc_witnesses_replay_and_disagree_on_outputs() {
    for stg in conflicted_models() {
        let checker = Checker::new(&stg).unwrap();
        let CheckOutcome::Conflict(w) = checker.check_csc().unwrap() else {
            panic!("model must have a CSC conflict");
        };
        assert!(w.replay(&stg));
        assert_ne!(w.out1, w.out2, "CSC witnesses must differ in Out");
        // Out sets recomputed from the markings must match the record.
        assert_eq!(stg.enabled_local_signals(&w.marking1), w.out1);
        assert_eq!(stg.enabled_local_signals(&w.marking2), w.out2);
    }
}

#[test]
fn random_model_witnesses_replay() {
    let mut conflicts = 0usize;
    for seed in 0..30 {
        let config = RandomStgConfig {
            signals: 5,
            sync_cycles: 4,
            max_cycle_len: 4,
            splits: 1,
            percent_high: 25,
        };
        let stg = random_stg(&config, seed);
        let checker = Checker::new(&stg).unwrap();
        if let CheckOutcome::Conflict(w) = checker.check_usc().unwrap() {
            assert!(w.replay(&stg), "seed {seed}");
            conflicts += 1;
        }
        if let CheckOutcome::Conflict(w) = checker.check_csc().unwrap() {
            assert!(w.replay(&stg), "seed {seed}");
        }
    }
    assert!(conflicts > 0, "some random models should conflict");
}

#[test]
fn deadlock_witnesses_replay() {
    for seed in 0..20 {
        let config = RandomStgConfig {
            signals: 4,
            sync_cycles: 4,
            max_cycle_len: 4,
            splits: 0,
            percent_high: 40,
        };
        let stg = random_stg(&config, 500 + seed);
        let checker = Checker::new(&stg).unwrap();
        if let Some(w) = checker.find_deadlock().unwrap() {
            let m = stg
                .net()
                .fire_sequence(stg.initial_marking(), &w.sequence)
                .expect("deadlock path replays");
            assert_eq!(m, w.marking);
            assert!(stg.net().is_deadlock(&m), "seed {seed}");
        }
    }
}
