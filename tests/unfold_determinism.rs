//! Determinism differential for parallel possible-extensions
//! discovery: `UnfoldOptions::threads` may only change wall-clock
//! time, never the prefix or any verdict built on it. The pool
//! computes extension candidates concurrently but the adequate-order
//! commit loop stays sequential, so for every thread count the
//! constructed prefix must be *bit-identical* to the serial one —
//! same events in the same order with the same keys, presets,
//! postsets, cut-off flags and mates — and every engine must return
//! the same verdict and witness.

use bench_harness::models;
use stg_coding_conflicts::csc_core::{CheckRequest, Engine, Property, Verdict};
use stg_coding_conflicts::stg::gen::counterflow::{counterflow_asym, counterflow_sym};
use stg_coding_conflicts::stg::gen::duplex::{dup_4ph, dup_mod};
use stg_coding_conflicts::stg::gen::ring::lazy_ring;
use stg_coding_conflicts::stg::Stg;
use stg_coding_conflicts::unfolding::{OrderStrategy, Prefix, UnfoldOptions};

/// Event-for-event, condition-for-condition structural equality.
fn assert_prefixes_identical(label: &str, threads: usize, serial: &Prefix, parallel: &Prefix) {
    let ctx = |what: &str| format!("{label} (threads {threads}): {what} diverged");
    assert_eq!(
        serial.num_events(),
        parallel.num_events(),
        "{}",
        ctx("event count")
    );
    assert_eq!(
        serial.num_conditions(),
        parallel.num_conditions(),
        "{}",
        ctx("condition count")
    );
    assert_eq!(
        serial.num_cutoffs(),
        parallel.num_cutoffs(),
        "{}",
        ctx("cut-off count")
    );
    for e in serial.events() {
        assert_eq!(
            serial.event_transition(e),
            parallel.event_transition(e),
            "{}",
            ctx("event transition")
        );
        assert_eq!(
            serial.event_preset(e),
            parallel.event_preset(e),
            "{}",
            ctx("event preset")
        );
        assert_eq!(
            serial.event_postset(e),
            parallel.event_postset(e),
            "{}",
            ctx("event postset")
        );
        assert_eq!(serial.depth(e), parallel.depth(e), "{}", ctx("depth"));
        assert_eq!(
            serial.order_key(e),
            parallel.order_key(e),
            "{}",
            ctx("adequate-order key")
        );
        assert_eq!(
            serial.is_cutoff(e),
            parallel.is_cutoff(e),
            "{}",
            ctx("cut-off flag")
        );
        assert_eq!(
            serial.cutoff_mate(e),
            parallel.cutoff_mate(e),
            "{}",
            ctx("cut-off mate")
        );
    }
    for b in serial.conditions() {
        assert_eq!(
            serial.cond_place(b),
            parallel.cond_place(b),
            "{}",
            ctx("condition place")
        );
        assert_eq!(
            serial.cond_producer(b),
            parallel.cond_producer(b),
            "{}",
            ctx("condition producer")
        );
        assert_eq!(
            serial.cond_consumers(b),
            parallel.cond_consumers(b),
            "{}",
            ctx("condition consumers")
        );
    }
}

#[test]
fn roster_prefixes_are_bit_identical_across_thread_counts() {
    for model in models() {
        let serial = Prefix::of_stg(&model.stg, UnfoldOptions::new()).unwrap();
        for threads in [2, 4] {
            let parallel =
                Prefix::of_stg(&model.stg, UnfoldOptions::new().threads(threads)).unwrap();
            assert_prefixes_identical(model.name, threads, &serial, &parallel);
        }
    }
}

#[test]
fn mcmillan_prefixes_are_bit_identical_across_thread_counts() {
    // The determinism argument must hold for every adequate order,
    // not just the ERV default; McMillan's size order has genuine key
    // ties, so the sequence-number tiebreak is doing real work here.
    for (label, stg) in [
        ("dup_4ph_2", dup_4ph(2, false)),
        ("cf_sym_2_3", counterflow_sym(2, 3)),
    ] {
        let base = UnfoldOptions::new().order(OrderStrategy::McMillan);
        let serial = Prefix::of_stg(&stg, base).unwrap();
        for threads in [2, 4] {
            let parallel = Prefix::of_stg(&stg, base.threads(threads)).unwrap();
            assert_prefixes_identical(label, threads, &serial, &parallel);
        }
    }
}

const ENGINES: [Engine; 6] = [
    Engine::UnfoldingIlp,
    Engine::ExplicitStateGraph,
    Engine::SymbolicBdd,
    Engine::Cegar,
    Engine::Portfolio,
    Engine::Race,
];

#[test]
fn engine_verdicts_are_unchanged_by_discovery_threads() {
    // One small representative per Table 1 family.
    let cases: Vec<(&str, Stg)> = vec![
        ("lazy_ring_2", lazy_ring(2)),
        ("dup_1", dup_4ph(1, false)),
        ("dup_mod_2", dup_mod(2)),
        ("cf_sym_2_2", counterflow_sym(2, 2)),
        ("cf_asym_2_2", counterflow_asym(2, 2)),
    ];
    for (label, stg) in &cases {
        for property in [Property::Usc, Property::Csc, Property::Normalcy] {
            for engine in ENGINES {
                let run = |threads: Option<usize>| {
                    let mut request = CheckRequest::new(stg, property).engine(engine);
                    if let Some(n) = threads {
                        request = request.unfold_threads(n);
                    }
                    request.run().expect("engine run succeeds").verdict
                };
                let baseline = run(None);
                for threads in [2, 4] {
                    let threaded = run(Some(threads));
                    if engine == Engine::Race {
                        // The race's winning engine (and hence the
                        // witness shape) is timing-dependent; only
                        // the three-valued answer is pinned.
                        assert_eq!(
                            baseline.holds(),
                            threaded.holds(),
                            "{label}/{property:?}/{engine:?} (threads {threads})"
                        );
                    } else {
                        // Deterministic engines must reproduce the
                        // verdict *and* the witness exactly.
                        assert_eq!(
                            baseline, threaded,
                            "{label}/{property:?}/{engine:?} (threads {threads})"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn reports_record_the_worker_pool() {
    let stg = dup_4ph(1, false);
    let run = CheckRequest::new(&stg, Property::Csc)
        .engine(Engine::UnfoldingIlp)
        .unfold_threads(3)
        .run()
        .unwrap();
    assert!(matches!(run.verdict, Verdict::Violated(_)));
    let stats = run.report.unfold.expect("unfolding engine reports stats");
    assert_eq!(stats.workers, 3);
    assert!(stats.pe_discovered > 0);
    assert!(stats.pe_commits > 0);
    // Serial runs report a single worker and never enter the pool.
    let serial = CheckRequest::new(&stg, Property::Csc)
        .engine(Engine::UnfoldingIlp)
        .run()
        .unwrap();
    let stats = serial.report.unfold.expect("stats present when serial");
    assert_eq!(stats.workers, 1);
}
