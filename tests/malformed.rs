//! The parser must reject every file in `tests/fixtures/malformed/`
//! with a typed error — and must never panic, which is checked by
//! running each parse under `catch_unwind`.

use std::fs;
use std::panic::catch_unwind;
use std::path::PathBuf;

use stg_coding_conflicts::stg;

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/malformed")
}

#[test]
fn every_malformed_fixture_is_rejected_without_panic() {
    let mut seen = 0;
    for entry in fs::read_dir(fixture_dir()).expect("fixture dir exists") {
        let path = entry.unwrap().path();
        if path.extension().is_none_or(|e| e != "g") {
            continue;
        }
        seen += 1;
        let bytes = fs::read(&path).unwrap();
        let result = catch_unwind(|| stg::parse_bytes(&bytes));
        match result {
            Ok(parsed) => assert!(
                parsed.is_err(),
                "{}: malformed fixture parsed successfully",
                path.display()
            ),
            Err(_) => panic!("{}: parser panicked", path.display()),
        }
    }
    assert!(seen >= 4, "expected the full corpus, found {seen} fixtures");
}

#[test]
fn rejections_are_specific() {
    let read = |name: &str| fs::read(fixture_dir().join(name)).unwrap();
    let err = |name: &str| stg::parse_bytes(&read(name)).unwrap_err().to_string();
    assert!(err("undeclared_signal.g").contains("undeclared signal"));
    assert!(err("duplicate_marking.g").contains("duplicate .marking"));
    assert!(err("non_utf8.g").contains("UTF-8"));
    // The truncated header never reaches a marking section.
    assert!(err("truncated_header.g").contains("marking"));
}
