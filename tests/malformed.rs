//! The parser must reject every file in `tests/fixtures/malformed/`
//! with a typed error — and must never panic, which is checked by
//! running each parse under `catch_unwind`. The lint pass must turn
//! each rejection into a stable diagnostic code with a source span,
//! and — the flip side — must *prove* USC on the conflict-free
//! fixture so every engine short-circuits without exploring a single
//! state.

use std::fs;
use std::panic::catch_unwind;
use std::path::PathBuf;

use stg_coding_conflicts::csc_core::{CheckRequest, Engine, Property, Verdict};
use stg_coding_conflicts::lint::{self, Code, Severity};
use stg_coding_conflicts::stg;

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/malformed")
}

#[test]
fn every_malformed_fixture_is_rejected_without_panic() {
    let mut seen = 0;
    for entry in fs::read_dir(fixture_dir()).expect("fixture dir exists") {
        let path = entry.unwrap().path();
        if path.extension().is_none_or(|e| e != "g") {
            continue;
        }
        seen += 1;
        let bytes = fs::read(&path).unwrap();
        let result = catch_unwind(|| stg::parse_bytes(&bytes));
        match result {
            Ok(parsed) => assert!(
                parsed.is_err(),
                "{}: malformed fixture parsed successfully",
                path.display()
            ),
            Err(_) => panic!("{}: parser panicked", path.display()),
        }
    }
    assert!(seen >= 4, "expected the full corpus, found {seen} fixtures");
}

#[test]
fn rejections_are_specific() {
    let read = |name: &str| fs::read(fixture_dir().join(name)).unwrap();
    let err = |name: &str| stg::parse_bytes(&read(name)).unwrap_err().to_string();
    assert!(err("undeclared_signal.g").contains("undeclared signal"));
    assert!(err("duplicate_marking.g").contains("duplicate .marking"));
    assert!(err("non_utf8.g").contains("UTF-8"));
    // The truncated header never reaches a marking section.
    assert!(err("truncated_header.g").contains("marking"));
}

/// Every malformed fixture maps to one *stable* lint code with a
/// source span — the contract the CLI's exit code 2, the server's
/// `lint_rejected` error and this table all share.
#[test]
fn every_malformed_fixture_has_a_stable_code_and_span() {
    let expected: &[(&str, Code, usize, usize)] = &[
        ("duplicate_marking.g", Code::DuplicateMarking, 7, 1),
        ("non_utf8.g", Code::InvalidUtf8, 2, 11),
        ("truncated_header.g", Code::BuildError, 3, 1),
        ("undeclared_signal.g", Code::UndeclaredSignal, 6, 6),
    ];
    for &(name, code, line, col) in expected {
        let bytes = fs::read(fixture_dir().join(name)).unwrap();
        let outcome = lint::lint_bytes(&bytes, &lint::LintOptions::default());
        assert!(outcome.report.has_errors(), "{name}: must be rejected");
        let first = outcome
            .report
            .diagnostics
            .iter()
            .find(|d| d.severity() == Severity::Error)
            .unwrap_or_else(|| panic!("{name}: no error diagnostic"));
        assert_eq!(first.code, code, "{name}: code");
        let span = first
            .span
            .unwrap_or_else(|| panic!("{name}: diagnostic carries no span"));
        assert_eq!((span.line, span.col), (line, col), "{name}: span");
    }
}

/// The conflict-free fixture is the other half of the contract: the
/// LP relaxation proves USC from the file alone, all six engines
/// short-circuit with the `lint_proved` marker, and the proved
/// verdict is differentially identical to what the explicit engine
/// computes by exhaustive enumeration with the prelint stage off.
#[test]
fn lint_proved_fixture_short_circuits_all_six_engines() {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/lint_proved_usc.g");
    let bytes = fs::read(path).unwrap();
    let outcome = lint::lint_bytes(&bytes, &lint::LintOptions::default());
    assert!(!outcome.report.has_errors());
    assert!(outcome.report.proofs.usc_proved, "LP proves USC statically");
    let stg = outcome.stg.expect("clean fixture parses");

    for engine in [
        Engine::UnfoldingIlp,
        Engine::ExplicitStateGraph,
        Engine::SymbolicBdd,
        Engine::Cegar,
        Engine::Portfolio,
        Engine::Race,
    ] {
        let run = CheckRequest::new(&stg, Property::Usc)
            .engine(engine)
            .prelint(true)
            .run()
            .unwrap();
        assert_eq!(run.verdict, Verdict::Holds, "{engine:?}");
        assert_eq!(run.report.winner, Some("lint"), "{engine:?}");
        assert_eq!(
            run.report.prefix_events_built,
            Some(0),
            "{engine:?}: no exploration behind a lint proof"
        );
        let summary = run.report.lint.expect("lint summary block");
        assert!(summary.proved && summary.usc_proved, "{engine:?}");
    }

    // Differential: the explicit engine, prelint off, enumerates the
    // full state space and must land on the same verdict.
    let explicit = CheckRequest::new(&stg, Property::Usc)
        .engine(Engine::ExplicitStateGraph)
        .run()
        .unwrap();
    assert_eq!(explicit.verdict, Verdict::Holds);
    assert!(
        explicit.report.lint.is_none(),
        "prelint is off in the reference run"
    );
    assert!(
        explicit.report.states.is_some_and(|s| s > 0),
        "the reference run actually explored"
    );
}

/// W003 (initially-unmarked siphon) is a warning on a *parsable* net,
/// and — since the siphon machinery was promoted into the CEGAR
/// constraint generator — its diagnostic must name a member place and
/// carry that place's source span, so editors can jump to it.
#[test]
fn unmarked_siphon_warning_carries_a_source_span() {
    let src = "\
.model m
.outputs a b
.graph
a+ a-
a- a+
limbo b+
b+ limbo2
limbo2 b-
b- limbo
.marking { <a-,a+> }
.initial_state 00
.end
";
    let outcome = lint::lint_bytes(src.as_bytes(), &lint::LintOptions::default());
    assert!(outcome.stg.is_some(), "net must be parsable");
    // The siphon also makes `b+`/`b-` structurally dead (L021); those
    // errors are consequences of the same defect, not parse failures.
    assert!(outcome
        .report
        .diagnostics
        .iter()
        .filter(|d| d.severity() == Severity::Error)
        .all(|d| d.code == Code::DeadTransition));
    let siphon = outcome
        .report
        .diagnostics
        .iter()
        .find(|d| d.code == Code::UnmarkedSiphon)
        .expect("W003 fires on the unmarked limbo cycle");
    assert_eq!(siphon.severity(), Severity::Warning);
    let object = siphon.object.as_deref().expect("names a member place");
    assert!(
        object == "limbo" || object == "limbo2",
        "object is a siphon member, got {object}"
    );
    let span = siphon.span.expect("W003 carries the member place's span");
    // First occurrence of "limbo": the arc `limbo b+` on line 6.
    assert_eq!((span.line, span.col), (6, 1), "span points at the place");
}

/// Helper for the I0xx span regressions below: structure-lints a
/// `.g` source and returns the diagnostic for `code`, asserting it
/// exists, is informational, and carries a span.
fn structure_diag(src: &str, code: Code) -> (String, (usize, usize)) {
    let outcome = lint::structure_bytes(src.as_bytes());
    let report = outcome.report.expect("net must be parsable");
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == code)
        .unwrap_or_else(|| panic!("{code} expected; got {:?}", report.diagnostics));
    assert_eq!(d.severity(), Severity::Info, "{code}");
    let span = d.span.unwrap_or_else(|| panic!("{code} must carry a span"));
    (
        d.object
            .clone()
            .unwrap_or_else(|| panic!("{code} names an object")),
        (span.line, span.col),
    )
}

/// I001 (not a marked graph): the witnessing choice place, with the
/// span of its first occurrence — and nothing further down the class
/// hierarchy, because a plain free-choice split stays a state
/// machine.
#[test]
fn i001_names_the_choice_place_with_its_span() {
    let src = "\
.model m
.outputs a b
.graph
split a+
split b+
a+ qa
qa a-
a- split
b+ qb
qb b-
b- split
.marking { split }
.initial_state 00
.end
";
    let (object, span) = structure_diag(src, Code::NotMarkedGraph);
    assert_eq!(object, "split");
    assert_eq!(span, (4, 1), "first occurrence: the arc `split a+`");
    let report = lint::structure_bytes(src.as_bytes()).report.unwrap();
    assert!(
        report.classes.state_machine && report.classes.free_choice,
        "a free-choice split refutes only the marked-graph class"
    );
    assert_eq!(report.diagnostics.len(), 1, "{:?}", report.diagnostics);
}

/// I002 (not a state machine): the witnessing fork transition, with
/// the span of its first occurrence — on a pure fork/join marked
/// graph, the only diagnostic.
#[test]
fn i002_names_the_fork_transition_with_its_span() {
    let src = "\
.model m
.outputs a x y
.graph
a+ x+ y+
x+ x-
y+ y-
x- a-
y- a-
a- a+
.marking { <a-,a+> }
.initial_state 000
.end
";
    let (object, span) = structure_diag(src, Code::NotStateMachine);
    assert_eq!(object, "a+");
    assert_eq!(span, (4, 1), "first occurrence: the fork arc `a+ x+ y+`");
    let report = lint::structure_bytes(src.as_bytes()).report.unwrap();
    assert!(
        report.classes.marked_graph,
        "forks keep the net a marked graph"
    );
    assert_eq!(report.diagnostics.len(), 1, "{:?}", report.diagnostics);
}

/// I003/I004 (not free-choice, not extended free-choice): the classic
/// asymmetric confusion — a shared place whose consumer also waits on
/// a private place — refutes both, each diagnostic naming the shared
/// place with its span. The singleton overlap keeps I005 quiet.
#[test]
fn i003_and_i004_name_the_confused_place_with_spans() {
    let src = "\
.model m
.outputs a c
.graph
shared a+
shared c+
other c+
a+ qa
qa a-
a- shared
c+ qc
qc c-
c- shared
c- other
.marking { shared other }
.initial_state 00
.end
";
    let (object, span) = structure_diag(src, Code::NotFreeChoice);
    assert_eq!(object, "shared");
    assert_eq!(span, (4, 1), "first occurrence: the arc `shared a+`");
    let (object, span) = structure_diag(src, Code::NotExtendedFreeChoice);
    assert_eq!(object, "shared");
    assert_eq!(span, (4, 1));
    let report = lint::structure_bytes(src.as_bytes()).report.unwrap();
    assert!(
        report.classes.reduced_asymmetric_choice,
        "a singleton overlap stays reduced asymmetric choice"
    );
    assert!(
        !report
            .diagnostics
            .iter()
            .any(|d| d.code == Code::NotReducedAsymmetricChoice),
        "{:?}",
        report.diagnostics
    );
}

/// I005 (not reduced asymmetric choice): two places with overlapping,
/// unequal, non-singleton postsets — Wimmel's RAC refutation — named
/// by the first place of the pair with its span.
#[test]
fn i005_names_the_rac_refuting_place_with_its_span() {
    let src = "\
.model m
.outputs a b c
.graph
p1 a+
p1 b+
p2 b+
p2 c+
a+ qa
qa a-
a- p1
b+ qb
qb b-
b- p1
b- p2
c+ qc
qc c-
c- p2
.marking { p1 p2 }
.initial_state 000
.end
";
    let (object, span) = structure_diag(src, Code::NotReducedAsymmetricChoice);
    assert_eq!(object, "p1");
    assert_eq!(span, (4, 1), "first occurrence: the arc `p1 a+`");
    let report = lint::structure_bytes(src.as_bytes()).report.unwrap();
    assert_eq!(report.classes.name(), "general");
    // The full hierarchy collapses: every I0xx code fires once.
    for code in [
        Code::NotMarkedGraph,
        Code::NotStateMachine,
        Code::NotFreeChoice,
        Code::NotExtendedFreeChoice,
        Code::NotReducedAsymmetricChoice,
    ] {
        assert_eq!(
            report.diagnostics.iter().filter(|d| d.code == code).count(),
            1,
            "{code}"
        );
        assert!(
            report.diagnostics.iter().all(|d| d.span.is_some()),
            "every structure diagnostic carries a span: {:?}",
            report.diagnostics
        );
    }
}
