//! Assertions tying the implementation to the specific claims and
//! figures of the paper (Khomenko/Koutny/Yakovlev, DATE 2002).

use stg_coding_conflicts::csc_core::{CheckOutcome, Checker};
use stg_coding_conflicts::stg::gen::vme::{vme_read, vme_read_csc_resolved};
use stg_coding_conflicts::stg::StateGraph;
use stg_coding_conflicts::unfolding::{Prefix, UnfoldOptions};

/// Fig. 2: the VME read prefix has events e1..e12 with exactly one
/// cut-off, labelled lds+.
#[test]
fn fig2_prefix_shape() {
    let stg = vme_read();
    let prefix = Prefix::of_stg(&stg, UnfoldOptions::default()).unwrap();
    assert_eq!(prefix.num_events(), 12);
    assert_eq!(prefix.num_cutoffs(), 1);
    let cutoff = prefix.events().find(|&e| prefix.is_cutoff(e)).unwrap();
    assert_eq!(
        stg.transition_name(prefix.event_transition(cutoff)),
        "lds+",
        "the paper's e12 is a second instance of lds+"
    );
}

/// Fig. 1(b): the CSC conflict is between two markings coded 10110
/// (order dsr dtack lds ldtack d) with Out = {lds} vs {d}.
#[test]
fn fig1_conflict_details() {
    let stg = vme_read();
    let checker = Checker::new(&stg).unwrap();
    let CheckOutcome::Conflict(w) = checker.check_csc().unwrap() else {
        panic!("vme_read conflicts");
    };
    assert_eq!(w.code.to_string(), "10110");
    let names = |out: &[stg_coding_conflicts::stg::Signal]| {
        out.iter()
            .map(|&z| stg.signal_name(z).to_owned())
            .collect::<Vec<_>>()
    };
    let mut outs = vec![names(&w.out1), names(&w.out2)];
    outs.sort();
    assert_eq!(outs, vec![vec!["d".to_owned()], vec!["lds".to_owned()]]);
    assert!(w.replay(&stg));
}

/// §3: the cut-off constraint of the example is x12 = 0 — i.e. no
/// accepted configuration contains the cut-off event.
#[test]
fn cutoff_constraints_hold_in_witnesses() {
    let stg = vme_read();
    let checker = Checker::new(&stg).unwrap();
    let CheckOutcome::Conflict(w) = checker.check_usc().unwrap() else {
        panic!("vme_read conflicts");
    };
    let prefix = checker.prefix();
    for e in prefix.events().filter(|&e| prefix.is_cutoff(e)) {
        assert!(!w.config1.contains(e.index()));
        assert!(!w.config2.contains(e.index()));
    }
}

/// §6 / Fig. 3: the resolved model satisfies CSC but csc is neither
/// p-normal nor n-normal; the paper's functions for the other output
/// signals exist, so those remain implementable.
#[test]
fn fig3_normalcy() {
    let stg = vme_read_csc_resolved();
    let checker = Checker::new(&stg).unwrap();
    assert!(checker.check_usc().unwrap().is_satisfied());
    assert!(checker.check_csc().unwrap().is_satisfied());
    let csc = stg.signal_by_name("csc").unwrap();
    let outcome = checker.check_normalcy_of(csc).unwrap();
    assert!(!outcome.p_normal && !outcome.n_normal);
    let p = outcome.p_witness.unwrap();
    let n = outcome.n_witness.unwrap();
    assert!(p.replay(&stg));
    assert!(n.replay(&stg));
    // The two witnesses show discordance in both directions.
    assert!(p.nxt1 && !p.nxt2);
    assert!(!n.nxt1 && n.nxt2);
}

/// §2.1: normalcy implies CSC — observed on our whole model zoo: any
/// normal model must satisfy CSC.
#[test]
fn normalcy_implies_csc() {
    use stg_coding_conflicts::stg::gen::counterflow::counterflow_sym;
    use stg_coding_conflicts::stg::gen::duplex::dup_4ph;
    use stg_coding_conflicts::stg::gen::ring::lazy_ring;
    for model in [
        vme_read(),
        vme_read_csc_resolved(),
        counterflow_sym(2, 2),
        dup_4ph(1, true),
        lazy_ring(2),
    ] {
        let sg = StateGraph::build(&model, Default::default()).unwrap();
        if sg.is_normal(&model) {
            assert!(sg.satisfies_csc(&model), "normalcy must imply CSC");
        }
    }
}

/// §8: the memory argument — prefixes of the benchmark roster stay
/// in the order of the STGs themselves ("STGs usually contain a lot
/// of concurrency but rather few conflicts").
#[test]
fn prefixes_stay_small() {
    for model in bench_models_small() {
        let prefix = Prefix::of_stg(&model, UnfoldOptions::default()).unwrap();
        let t = model.net().num_transitions();
        assert!(
            prefix.num_events() <= 4 * t,
            "prefix should stay within a small factor of |T| (got {} events for {} transitions)",
            prefix.num_events(),
            t
        );
    }
}

fn bench_models_small() -> Vec<stg_coding_conflicts::stg::Stg> {
    use stg_coding_conflicts::stg::gen::counterflow::counterflow_sym;
    use stg_coding_conflicts::stg::gen::duplex::{dup_4ph, dup_mod};
    use stg_coding_conflicts::stg::gen::ring::lazy_ring;
    vec![
        vme_read(),
        lazy_ring(4),
        dup_4ph(2, false),
        dup_mod(3),
        counterflow_sym(3, 3),
    ]
}
