//! Cross-validation between the synthesis back-end and the normalcy
//! checkers: for USC-satisfying STGs, a signal has a monotone
//! nondecreasing completion of its next-state function iff it is
//! p-normal (and nonincreasing iff n-normal) — the two sides compute
//! the same §6 condition through completely different machinery
//! (BDDs over codes vs. integer programs over the unfolding).

use stg_coding_conflicts::csc_core::Checker;
use stg_coding_conflicts::stg::gen::counterflow::counterflow_sym;
use stg_coding_conflicts::stg::gen::duplex::dup_4ph;
use stg_coding_conflicts::stg::gen::vme::vme_read_csc_resolved;
use stg_coding_conflicts::stg::{StateGraph, Stg};
use stg_coding_conflicts::synth::NextStateFunctions;

fn usc_models() -> Vec<(&'static str, Stg)> {
    vec![
        ("vme_resolved", vme_read_csc_resolved()),
        ("cf_2_2", counterflow_sym(2, 2)),
        ("cf_3_2", counterflow_sym(3, 2)),
        ("dup_1r", dup_4ph(1, true)),
        ("dup_2r", dup_4ph(2, true)),
    ]
}

#[test]
fn monotone_completions_match_normalcy_oracle() {
    for (label, model) in usc_models() {
        let sg = StateGraph::build(&model, Default::default()).unwrap();
        assert!(sg.satisfies_usc(), "{label}: these models must be USC");
        let mut fns = NextStateFunctions::derive(&model, Default::default()).unwrap();
        let signals: Vec<_> = fns.signals().collect();
        for z in signals {
            let oracle = sg.normalcy_of(&model, z);
            assert_eq!(
                fns.has_increasing_completion(z),
                oracle.p_normal,
                "{label}/{}: increasing completion vs p-normalcy",
                model.signal_name(z)
            );
            assert_eq!(
                fns.has_decreasing_completion(z),
                oracle.n_normal,
                "{label}/{}: decreasing completion vs n-normalcy",
                model.signal_name(z)
            );
        }
    }
}

#[test]
fn monotone_completions_match_unfolding_normalcy() {
    for (label, model) in usc_models() {
        let checker = Checker::new(&model).unwrap();
        let mut fns = NextStateFunctions::derive(&model, Default::default()).unwrap();
        let signals: Vec<_> = fns.signals().collect();
        for z in signals {
            let outcome = checker.check_normalcy_of(z).unwrap();
            assert_eq!(
                fns.is_monotonic(z),
                outcome.is_normal(),
                "{label}/{}",
                model.signal_name(z)
            );
        }
    }
}

#[test]
fn derived_covers_agree_with_state_graph() {
    // Every equation must evaluate to Nxt_z on every reachable state.
    for (label, model) in usc_models() {
        let sg = StateGraph::build(&model, Default::default()).unwrap();
        let mut fns = NextStateFunctions::derive(&model, Default::default()).unwrap();
        let signals: Vec<_> = fns.signals().collect();
        for z in signals {
            let eq = fns.equation(z);
            for s in sg.states() {
                let code = sg.code(s);
                let bits: Vec<bool> = code.bits().collect();
                let expected = model.next_state(sg.marking(s), code, z);
                assert_eq!(
                    eq.eval(&|v| bits[v as usize]),
                    expected,
                    "{label}/{} at state {s}",
                    model.signal_name(z)
                );
            }
        }
    }
}
