//! Cross-validation between the synthesis back-end and the normalcy
//! checkers: for USC-satisfying STGs, a signal has a monotone
//! nondecreasing completion of its next-state function iff it is
//! p-normal (and nonincreasing iff n-normal) — the two sides compute
//! the same §6 condition through completely different machinery
//! (BDDs over codes vs. integer programs over the unfolding).

use stg_coding_conflicts::csc_core::{
    Artifacts, CheckRequest, Checker, Engine, PipelineOutcome, Property, Verdict,
};
use stg_coding_conflicts::resolve::{synthesize, SynthesisOptions};
use stg_coding_conflicts::stg::gen::counterflow::counterflow_sym;
use stg_coding_conflicts::stg::gen::duplex::{dup_4ph, dup_mod};
use stg_coding_conflicts::stg::gen::ring::lazy_ring;
use stg_coding_conflicts::stg::gen::vme::{vme_read, vme_read_csc_resolved};
use stg_coding_conflicts::stg::{StateGraph, Stg};
use stg_coding_conflicts::synth::NextStateFunctions;

fn usc_models() -> Vec<(&'static str, Stg)> {
    vec![
        ("vme_resolved", vme_read_csc_resolved()),
        ("cf_2_2", counterflow_sym(2, 2)),
        ("cf_3_2", counterflow_sym(3, 2)),
        ("dup_1r", dup_4ph(1, true)),
        ("dup_2r", dup_4ph(2, true)),
    ]
}

#[test]
fn monotone_completions_match_normalcy_oracle() {
    for (label, model) in usc_models() {
        let sg = StateGraph::build(&model, Default::default()).unwrap();
        assert!(sg.satisfies_usc(), "{label}: these models must be USC");
        let mut fns = NextStateFunctions::derive(&model, Default::default()).unwrap();
        let signals: Vec<_> = fns.signals().collect();
        for z in signals {
            let oracle = sg.normalcy_of(&model, z);
            assert_eq!(
                fns.has_increasing_completion(z),
                oracle.p_normal,
                "{label}/{}: increasing completion vs p-normalcy",
                model.signal_name(z)
            );
            assert_eq!(
                fns.has_decreasing_completion(z),
                oracle.n_normal,
                "{label}/{}: decreasing completion vs n-normalcy",
                model.signal_name(z)
            );
        }
    }
}

#[test]
fn monotone_completions_match_unfolding_normalcy() {
    for (label, model) in usc_models() {
        let checker = Checker::new(&model).unwrap();
        let mut fns = NextStateFunctions::derive(&model, Default::default()).unwrap();
        let signals: Vec<_> = fns.signals().collect();
        for z in signals {
            let outcome = checker.check_normalcy_of(z).unwrap();
            assert_eq!(
                fns.is_monotonic(z),
                outcome.is_normal(),
                "{label}/{}",
                model.signal_name(z)
            );
        }
    }
}

/// Differential re-verification of resolver outputs: every net the
/// synthesis pipeline claims to have resolved is re-proved
/// conflict-free by *all six* engines independently (plus a
/// consistency check), so a resolver bug cannot hide behind the one
/// engine it used for its own final verification.
#[test]
fn resolver_outputs_are_reproved_by_all_six_engines() {
    let conflicted: Vec<(&str, Stg)> = vec![
        ("vme", vme_read()),
        ("dup_1", dup_4ph(1, false)),
        ("dup_mod_2", dup_mod(2)),
        ("lazy_ring_2", lazy_ring(2)),
    ];
    for (label, model) in conflicted {
        let run = synthesize(&model, &SynthesisOptions::default(), None)
            .unwrap_or_else(|e| panic!("{label}: synthesis failed: {e}"));
        let PipelineOutcome::Resolved { stg: fixed, .. } = &run.pipeline.outcome else {
            panic!(
                "{label}: expected a resolution, got {:?}",
                run.pipeline.outcome
            );
        };
        // The resolved net must still be consistent — insertion is
        // not allowed to break the STG's basic semantics.
        let checker = Checker::new(fixed).unwrap_or_else(|e| panic!("{label}: {e}"));
        assert!(
            checker
                .check_consistency()
                .unwrap_or_else(|e| panic!("{label}: {e}"))
                .is_consistent(),
            "{label}: resolved net must stay consistent"
        );
        // All six engines, one shared artifact set.
        let artifacts = Artifacts::of(fixed);
        for engine in [
            Engine::UnfoldingIlp,
            Engine::ExplicitStateGraph,
            Engine::SymbolicBdd,
            Engine::Cegar,
            Engine::Portfolio,
            Engine::Race,
        ] {
            let check = CheckRequest::new(fixed, Property::Csc)
                .engine(engine)
                .artifacts(&artifacts)
                .run()
                .unwrap_or_else(|e| panic!("{label}/{}: {e}", engine.name()));
            assert!(
                matches!(check.verdict, Verdict::Holds),
                "{label}/{}: resolver output must re-prove CSC, got {:?}",
                engine.name(),
                check.verdict
            );
        }
    }
}

#[test]
fn derived_covers_agree_with_state_graph() {
    // Every equation must evaluate to Nxt_z on every reachable state.
    for (label, model) in usc_models() {
        let sg = StateGraph::build(&model, Default::default()).unwrap();
        let mut fns = NextStateFunctions::derive(&model, Default::default()).unwrap();
        let signals: Vec<_> = fns.signals().collect();
        for z in signals {
            let eq = fns.equation(z);
            for s in sg.states() {
                let code = sg.code(s);
                let bits: Vec<bool> = code.bits().collect();
                let expected = model.next_state(sg.marking(s), code, z);
                assert_eq!(
                    eq.eval(&|v| bits[v as usize]),
                    expected,
                    "{label}/{} at state {s}",
                    model.signal_name(z)
                );
            }
        }
    }
}
