//! Tests over the committed `.g` corpus in `assets/`: every file must
//! parse, round-trip, and be analysable by the full battery; and the
//! parser must never panic on arbitrary input.

use std::fs;
use std::path::PathBuf;

use proptest::prelude::*;
use stg_coding_conflicts::csc_core::Checker;
use stg_coding_conflicts::stg;

fn corpus() -> Vec<(String, String)> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("assets");
    let mut files: Vec<(String, String)> = fs::read_dir(&dir)
        .expect("assets directory exists")
        .filter_map(|e| {
            let path = e.ok()?.path();
            (path.extension()? == "g").then(|| {
                (
                    path.file_name()
                        .expect("files read from a directory are named")
                        .to_string_lossy()
                        .into_owned(),
                    fs::read_to_string(&path).expect("readable"),
                )
            })
        })
        .collect();
    files.sort();
    assert!(files.len() >= 8, "corpus should have at least 8 models");
    files
}

#[test]
fn corpus_parses_and_roundtrips() {
    for (name, source) in corpus() {
        let model = stg::parse(&source).unwrap_or_else(|e| panic!("{name}: {e}"));
        let text = stg::to_g_format(&model, "roundtrip");
        let back = stg::parse(&text).unwrap_or_else(|e| panic!("{name} (rewrite): {e}"));
        assert_eq!(back.num_signals(), model.num_signals(), "{name}");
        assert_eq!(
            back.net().num_transitions(),
            model.net().num_transitions(),
            "{name}"
        );
        assert_eq!(back.net().num_places(), model.net().num_places(), "{name}");
    }
}

#[test]
fn corpus_full_battery() {
    for (name, source) in corpus() {
        let model = stg::parse(&source).unwrap_or_else(|e| panic!("{name}: {e}"));
        let report = Checker::analyse_stg(&model).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(report.consistency.is_consistent(), "{name}");
        assert!(report.deadlock.is_none(), "{name} must be deadlock-free");
        // Resolved/conflict-free corpus entries must pass CSC.
        let expect_csc =
            name.contains("resolved") || name.contains("cf_") || name.contains("arbiter");
        if expect_csc {
            assert!(
                report.csc.as_ref().is_some_and(|c| c.is_satisfied()),
                "{name} should satisfy CSC"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The parser returns Ok or Err but never panics, whatever the
    /// input.
    #[test]
    fn parser_never_panics(input in "\\PC*") {
        let _ = stg::parse(&input);
    }

    /// Same for structured-looking garbage.
    #[test]
    fn parser_never_panics_on_directive_soup(
        lines in prop::collection::vec(
            prop_oneof![
                Just(".inputs a b".to_owned()),
                Just(".outputs x".to_owned()),
                Just(".graph".to_owned()),
                Just("a+ x+".to_owned()),
                Just("x+ a-".to_owned()),
                Just(".marking { <a+,x+> }".to_owned()),
                Just(".marking {".to_owned()),
                Just(".initial_state 01".to_owned()),
                Just(".initial_state zz".to_owned()),
                Just(".end".to_owned()),
                Just("p q r".to_owned()),
                Just("<a,b> c".to_owned()),
            ],
            0..12,
        )
    ) {
        let src = lines.join("\n");
        let _ = stg::parse(&src);
    }
}
