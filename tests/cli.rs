//! End-to-end tests of the `stgcheck` command-line tool.

use std::process::{Command, Output};

fn stgcheck(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_stgcheck"))
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("binary runs")
}

fn stdout(o: &Output) -> String {
    String::from_utf8_lossy(&o.stdout).into_owned()
}

#[test]
fn csc_on_vme_reports_conflict_with_exit_1() {
    let out = stgcheck(&["csc", "assets/vme_read.g"]);
    assert_eq!(out.status.code(), Some(1));
    let text = stdout(&out);
    assert!(text.contains("CSC conflict"));
    assert!(text.contains("Out(M')"));
}

#[test]
fn info_and_unfold() {
    let out = stgcheck(&["info", "assets/vme_read.g"]);
    assert_eq!(out.status.code(), Some(0));
    assert!(stdout(&out).contains("consistent: true"));

    let out = stgcheck(&["unfold", "assets/vme_read.g"]);
    assert_eq!(out.status.code(), Some(0));
    assert!(stdout(&out).contains("|E| = 12"));
    assert!(stdout(&out).contains("|E_cut| = 1"));
}

#[test]
fn engines_give_same_verdict() {
    for engine in ["unfolding", "explicit", "symbolic"] {
        let out = stgcheck(&["usc", "assets/vme_read.g", "--engine", engine]);
        assert_eq!(out.status.code(), Some(1), "engine {engine}");
    }
}

#[test]
fn gen_pipes_back_into_check() {
    let generated = stgcheck(&["gen", "cf-sym", "2", "3"]);
    assert_eq!(generated.status.code(), Some(0));
    let text = stdout(&generated);
    assert!(text.contains(".model cf-sym"));
    // Round-trip through the parser.
    let model = stg_coding_conflicts::stg::parse(&text).expect("generated .g parses");
    assert_eq!(model.num_signals(), 7);
}

#[test]
fn dot_outputs() {
    let out = stgcheck(&["dot", "assets/vme_read.g"]);
    assert!(stdout(&out).starts_with("digraph"));
    let out = stgcheck(&["unfold", "assets/vme_read.g", "--dot"]);
    assert!(stdout(&out).starts_with("digraph"));
}

#[test]
fn normalcy_and_deadlock() {
    let out = stgcheck(&["deadlock", "assets/vme_read.g"]);
    assert_eq!(out.status.code(), Some(0));
    assert!(stdout(&out).contains("deadlock-free"));

    let out = stgcheck(&["normalcy", "assets/vme_read.g"]);
    // The unresolved VME violates normalcy (normalcy implies CSC).
    assert_eq!(out.status.code(), Some(1));
    assert!(stdout(&out).contains("NOT normal"));
}

#[test]
fn errors_exit_2() {
    let out = stgcheck(&["csc", "no/such/file.g"]);
    assert_eq!(out.status.code(), Some(2));
    let out = stgcheck(&["frobnicate", "assets/vme_read.g"]);
    assert_eq!(out.status.code(), Some(2));
    let out = stgcheck(&[]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn mcmillan_prefix_not_smaller() {
    let erv = stdout(&stgcheck(&["unfold", "assets/vme_read.g"]));
    let mcm = stdout(&stgcheck(&["unfold", "assets/vme_read.g", "--mcmillan"]));
    let events = |s: &str| -> usize {
        s.split("|E| = ")
            .nth(1)
            .and_then(|t| t.split(',').next())
            .and_then(|t| t.trim().parse().ok())
            .expect("parse |E|")
    };
    assert!(events(&mcm) >= events(&erv));
}
