//! Differential validation of the CEGAR engine against the explicit
//! state-graph oracle, plus the issue's acceptance criteria on the
//! Table 1 roster: every conclusive CEGAR verdict must match the
//! oracle (a disagreement is a soundness bug, never a "skip"), all
//! conflict-free roster families must be *proved* over the state
//! equation alone, and enough conflicted families must be *refuted*
//! with concrete discordant-state witnesses — all with zero prefix
//! events and zero BDD nodes.

use std::time::Duration;

use bench_harness::models;
use stg_coding_conflicts::csc_core::{
    Budget, CheckRequest, Engine, Property, ResourceReport, Verdict, Witness,
};
use stg_coding_conflicts::stg::gen::random::{random_stg, RandomStgConfig};

/// Per-check wall-clock allowance. A handful of random seeds make the
/// integer search genuinely hard; the engine must then *abstain*
/// within the budget (skipping the comparison), never stall or guess.
/// Debug builds run the exact rational simplex several times slower,
/// so they get a proportionally longer leash.
fn allowance(secs: u64) -> Budget {
    let secs = if cfg!(debug_assertions) {
        secs * 8
    } else {
        secs
    };
    Budget::unlimited().with_deadline(Duration::from_secs(secs))
}

/// The engine's defining property: it never unfolds and never builds
/// a BDD, on any input, conclusive or not.
fn assert_no_state_space(report: &ResourceReport, label: &str) {
    assert_eq!(report.engine, "cegar", "{label}");
    assert_eq!(report.prefix_events_built, Some(0), "{label}");
    assert_eq!(report.prefix_events, None, "{label}");
    assert_eq!(report.bdd_nodes, None, "{label}");
    assert_eq!(report.bdd, None, "{label}");
    assert_eq!(report.states, None, "{label}");
}

/// CEGAR vs the explicit oracle over randomly generated STGs. An
/// abstention (budget, replay horizon) skips the comparison; a
/// conclusive disagreement is a hard failure.
#[test]
fn random_stgs_cegar_matches_explicit() {
    let mut conclusive = 0u32;
    let mut total = 0u32;
    for seed in 0..50u64 {
        let config = RandomStgConfig {
            signals: 4,
            sync_cycles: 3,
            max_cycle_len: 4,
            splits: seed as usize % 3,
            percent_high: 30,
        };
        let stg = random_stg(&config, seed);
        for property in [Property::Usc, Property::Csc] {
            total += 1;
            let run = CheckRequest::new(&stg, property)
                .engine(Engine::Cegar)
                .budget(allowance(2))
                .run()
                .unwrap();
            assert_no_state_space(&run.report, &format!("seed {seed}"));
            let Some(verdict) = run.verdict.holds() else {
                continue; // inconclusive: nothing to compare
            };
            conclusive += 1;
            let oracle = CheckRequest::new(&stg, property)
                .engine(Engine::ExplicitStateGraph)
                .run_bool()
                .unwrap();
            assert_eq!(
                verdict, oracle,
                "seed {seed}, {property:?}: cegar disagrees with the explicit oracle"
            );
        }
    }
    // The suite proves nothing if the engine abstains everywhere.
    assert!(
        conclusive * 2 >= total,
        "cegar conclusive on only {conclusive}/{total} random checks"
    );
}

/// Acceptance: every conflict-free Table 1 family is proved from the
/// state equation alone — no prefix, no BDDs, no branching needed
/// beyond the LP relaxation and its cuts.
#[test]
fn cegar_proves_all_conflict_free_table1_families() {
    for model in models().into_iter().filter(|m| m.expect_csc) {
        let run = CheckRequest::new(&model.stg, Property::Csc)
            .engine(Engine::Cegar)
            .budget(allowance(60))
            .run()
            .unwrap();
        assert_no_state_space(&run.report, model.name);
        assert_eq!(
            run.verdict,
            Verdict::Holds,
            "{}: expected a state-equation proof, got {:?}",
            model.name,
            run.verdict
        );
    }
}

/// Acceptance: at least 3 of the 9 conflicted Table 1 families are
/// refuted with a pair of *distinct* concrete discordant states; the
/// rest may abstain, but a `Holds` on a conflicted family is a
/// soundness bug and fails hard.
#[test]
fn cegar_refutes_conflicted_table1_families_with_state_witnesses() {
    let mut refuted = Vec::new();
    for model in models().into_iter().filter(|m| !m.expect_csc) {
        let run = CheckRequest::new(&model.stg, Property::Csc)
            .engine(Engine::Cegar)
            .budget(allowance(60))
            .run()
            .unwrap();
        assert_no_state_space(&run.report, model.name);
        match &run.verdict {
            Verdict::Holds => panic!("{}: proved a conflicted family", model.name),
            Verdict::Unknown(_) => {}
            Verdict::Violated(witness) => {
                let Witness::States(pair) = witness else {
                    panic!("{}: expected a state-pair witness", model.name);
                };
                assert_ne!(pair.0, pair.1, "{}: states must differ", model.name);
                refuted.push(model.name);
            }
        }
    }
    assert!(
        refuted.len() >= 3,
        "only {refuted:?} of the 9 conflicted families were refuted"
    );
}
