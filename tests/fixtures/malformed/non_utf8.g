.model nonutf8
.outputs aÿþ
.graph
a+ a-
a- a+
.marking { <a-,a+> }
.end
