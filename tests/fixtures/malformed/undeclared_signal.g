.model undeclared
.inputs req
.outputs ack
.graph
req+ ack+
ack+ ghost+
ghost+ req-
req- ack-
ack- req+
.marking { <ack-,req+> }
.end
