.model dupmark
.outputs a
.graph
a+ a-
a- a+
.marking { <a-,a+> }
.marking { <a+,a-> }
.end
