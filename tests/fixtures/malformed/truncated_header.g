.model truncated
.inputs dsr ldtack
.outputs lds d dt
