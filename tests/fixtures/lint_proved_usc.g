.model cf-sym-a
.outputs x0_0 x0_1 x0_2 x1_0 x1_1 x1_2
.internal s
.graph
s+ x0_0- x1_0-
s- x0_0+ x1_0+
x0_0+ x0_1+
x0_1+ x0_2+
x0_2+ s+
x0_0- x0_1-
x0_1- x0_2-
x0_2- s-
x1_0+ x1_1+
x1_1+ x1_2+
x1_2+ s+
x1_0- x1_1-
x1_1- x1_2-
x1_2- s-
.marking { <s-,x0_0+> <s-,x1_0+> }
.initial_state 0000000
.end
