//! Differential validation of artifact reuse: for every engine and
//! property, a *warm* check on a shared [`Artifacts`] set (the second
//! check against the same set, with every stage already built) must
//! return the same verdict as a *cold* stand-alone check — sharing
//! prefixes, state graphs and symbolic encodings must never change an
//! answer, only skip work.

use stg_coding_conflicts::csc_core::{Artifacts, Budget, CheckRequest, Engine, Property, Verdict};
use stg_coding_conflicts::stg::gen::counterflow::counterflow_sym;
use stg_coding_conflicts::stg::gen::vme::{vme_read, vme_read_csc_resolved};
use stg_coding_conflicts::stg::Stg;

const ENGINES: [Engine; 5] = [
    Engine::UnfoldingIlp,
    Engine::ExplicitStateGraph,
    Engine::SymbolicBdd,
    Engine::Portfolio,
    Engine::Race,
];

const PROPERTIES: [Property; 3] = [Property::Usc, Property::Csc, Property::Normalcy];

/// Whether two verdicts agree in full: same arm, and for violations
/// the same witness (engines are deterministic, so a reused artifact
/// must reproduce the exact counterexample).
fn same_verdict(a: &Verdict, b: &Verdict) -> bool {
    match (a, b) {
        (Verdict::Holds, Verdict::Holds) => true,
        (Verdict::Violated(wa), Verdict::Violated(wb)) => wa == wb,
        (Verdict::Unknown(ra), Verdict::Unknown(rb)) => ra == rb,
        _ => false,
    }
}

fn assert_cold_equals_warm(stg: &Stg, label: &str) {
    let budget = Budget::unlimited();
    for engine in ENGINES {
        let artifacts = Artifacts::of(stg);
        for property in PROPERTIES {
            let cold = CheckRequest::new(stg, property)
                .engine(engine)
                .budget(budget.clone())
                .run()
                .unwrap_or_else(|e| panic!("{label}/{engine:?}/{property:?} cold: {e}"));
            // First call warms the stages, second is the pure-reuse run.
            let shared = |tag: &str| {
                CheckRequest::new(stg, property)
                    .engine(engine)
                    .budget(budget.clone())
                    .artifacts(&artifacts)
                    .run()
                    .unwrap_or_else(|e| panic!("{label}/{engine:?}/{property:?} {tag}: {e}"))
            };
            let _ = shared("warmup");
            let warm = shared("warm");
            if engine == Engine::Race {
                // The race adopts whichever member concludes first, so
                // only the three-valued outcome is deterministic.
                assert_eq!(
                    cold.verdict.holds(),
                    warm.verdict.holds(),
                    "{label}/{engine:?}/{property:?}: cold {:?} vs warm {:?}",
                    cold.verdict,
                    warm.verdict
                );
            } else {
                assert!(
                    same_verdict(&cold.verdict, &warm.verdict),
                    "{label}/{engine:?}/{property:?}: cold {:?} vs warm {:?}",
                    cold.verdict,
                    warm.verdict
                );
            }
            if engine == Engine::UnfoldingIlp {
                assert_eq!(
                    warm.report.prefix_events_built,
                    Some(0),
                    "{label}/{property:?}: warm unfolding run must build nothing"
                );
            }
        }
    }
}

#[test]
fn conflicted_model_agrees_cold_and_warm_everywhere() {
    assert_cold_equals_warm(&vme_read(), "vme");
}

#[test]
fn resolved_model_agrees_cold_and_warm_everywhere() {
    assert_cold_equals_warm(&vme_read_csc_resolved(), "vme_resolved");
}

#[test]
fn conflict_free_model_agrees_cold_and_warm_everywhere() {
    assert_cold_equals_warm(&counterflow_sym(2, 2), "cf_sym_2_2");
}
