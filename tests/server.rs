//! In-process integration test of the `stgd` service: a mixed batch
//! with a malformed `.g` and a budget-exhausting job, every job
//! answered per id, and a clean draining shutdown.

use std::collections::HashMap;

use stg_coding_conflicts::csc_core::{Engine, Property};
use stg_coding_conflicts::server::json::Value;
use stg_coding_conflicts::server::protocol::{BudgetSpec, CheckRequest};
use stg_coding_conflicts::server::{spawn, Client, ServerConfig};
use stg_coding_conflicts::stg;

fn check_request(id: &str, g: &str, budget: BudgetSpec) -> CheckRequest {
    CheckRequest {
        id: id.to_owned(),
        stg_g: g.to_owned(),
        property: Property::Csc,
        engine: None,
        budget,
    }
}

#[test]
fn mixed_batch_gets_per_job_verdicts_and_a_clean_shutdown() {
    let handle = spawn(ServerConfig {
        workers: 4,
        ..Default::default()
    })
    .expect("bind ephemeral port");
    let mut client = Client::connect(handle.addr()).expect("connect");

    let vme = stg::to_g_format(&stg::gen::vme::vme_read(), "vme");
    let clean = stg::to_g_format(&stg::gen::counterflow::counterflow_sym(2, 2), "cf");
    // A violated model, a satisfied model, a malformed input, and a
    // job whose event budget cannot reach a verdict.
    client
        .submit(&check_request("violated", &vme, BudgetSpec::default()))
        .expect("submit");
    client
        .submit(&check_request("holds", &clean, BudgetSpec::default()))
        .expect("submit");
    client
        .submit(&check_request(
            "malformed",
            ".inputs a\nthis is not a .g file",
            BudgetSpec::default(),
        ))
        .expect("submit");
    // The starved job pins the unfolding engine: under the racing
    // default, an event cap starves only one racer and the others
    // would still decide this tiny model. It must ship a net no other
    // job uses — a repeated net would hit the artifact cache, and a
    // *completed* cached prefix is legitimately reused under any
    // smaller event cap (see docs/ARTIFACTS.md), yielding a real
    // verdict instead of the exhaustion this job exists to provoke.
    // The net must also not be a state machine: the server enables
    // the structure pass on every check, and its one-token fast path
    // would answer an SM net (such as a lazy ring) before the event
    // cap could bite.
    let starved_g = stg::to_g_format(&stg::gen::duplex::dup_4ph(1, false), "starved");
    client
        .submit(&CheckRequest {
            id: "starved".to_owned(),
            stg_g: starved_g,
            property: Property::Csc,
            engine: Some(Engine::UnfoldingIlp),
            budget: BudgetSpec {
                max_events: Some(1),
                ..Default::default()
            },
        })
        .expect("submit");

    let mut responses = HashMap::new();
    for _ in 0..4 {
        let response = client.read_response().expect("read verdict");
        let id = response.id.clone().expect("response carries its id");
        responses.insert(id, response);
    }

    let violated = &responses["violated"];
    assert_eq!(violated.verdict.as_deref(), Some("violated"));
    assert_eq!(violated.engine.as_deref(), Some("race"));
    assert!(violated.winner.is_some(), "race reports its winner");
    assert!(violated.elapsed_ms.is_some(), "resource report attached");
    assert!(
        violated.raw.get("witness").is_some_and(|w| !w.is_null()),
        "violated verdicts carry a witness"
    );

    assert_eq!(responses["holds"].verdict.as_deref(), Some("holds"));

    let malformed = &responses["malformed"];
    assert_eq!(malformed.status, "error");
    // Admission lint rejects the input on the reader thread with the
    // stable code and structured diagnostics (protocol revision 3).
    assert_eq!(malformed.code.as_deref(), Some("lint_rejected"));
    assert!(
        malformed.diagnostics().is_some(),
        "lint rejection carries diagnostics: {:?}",
        malformed.error
    );

    let starved = &responses["starved"];
    assert_eq!(starved.verdict.as_deref(), Some("unknown"));
    assert_eq!(starved.reason.as_deref(), Some("event-limit"));

    let stats = client.stats().expect("stats");
    let stat = |key: &str| {
        stats
            .get("stats")
            .and_then(|s| s.get(key))
            .and_then(Value::as_u64)
    };
    // The malformed job never reached the queue: admission lint
    // rejected it, so it counts as rejected rather than errored.
    assert_eq!(stat("jobs_received"), Some(3));
    assert_eq!(stat("jobs_completed"), Some(3));
    assert_eq!(stat("jobs_errored"), Some(0));
    assert_eq!(stat("jobs_rejected"), Some(1));

    let ack = client.shutdown().expect("shutdown ack");
    assert_eq!(
        ack.get("shutting_down").and_then(Value::as_bool),
        Some(true)
    );
    handle.join();
}

/// Responses are correlated by id, not order: a heavy job submitted
/// first must not block the verdict of a light job on a multi-worker
/// pool.
#[test]
fn completion_order_is_not_submission_order() {
    let handle = spawn(ServerConfig {
        workers: 2,
        ..Default::default()
    })
    .expect("bind ephemeral port");
    let mut client = Client::connect(handle.addr()).expect("connect");

    let heavy = stg::to_g_format(&stg::gen::counterflow::counterflow_sym(7, 2), "heavy");
    let light = stg::to_g_format(&stg::gen::vme::vme_read(), "light");
    client
        .submit(&check_request("heavy", &heavy, BudgetSpec::default()))
        .expect("submit");
    client
        .submit(&check_request("light", &light, BudgetSpec::default()))
        .expect("submit");

    let first = client.read_response().expect("first verdict");
    let second = client.read_response().expect("second verdict");
    assert_eq!(
        first.id.as_deref(),
        Some("light"),
        "light job finishes first on a 2-worker pool"
    );
    assert_eq!(second.id.as_deref(), Some("heavy"));
    assert_eq!(second.verdict.as_deref(), Some("holds"));
    handle.shutdown();
}
