//! Validates every row of the regenerated Table 1 against the
//! explicit-state oracle: the roster's expected verdicts, the
//! unfolding checker's verdicts and the enumerated truth must all
//! coincide, and each prefix must be complete.

use bench_harness::models;
use petri::ExploreLimits;
use stg_coding_conflicts::csc_core::Checker;
use stg_coding_conflicts::stg::StateGraph;
use stg_coding_conflicts::unfolding::{Prefix, UnfoldOptions};

#[test]
fn roster_verdicts_match_the_oracle() {
    for model in models() {
        let limits = ExploreLimits {
            max_states: 2_000_000,
            token_bound: 1,
        };
        let sg =
            StateGraph::build(&model.stg, limits).unwrap_or_else(|e| panic!("{}: {e}", model.name));
        let truth = sg.satisfies_csc(&model.stg);
        assert_eq!(
            truth, model.expect_csc,
            "{}: roster expectation",
            model.name
        );
        let checker = Checker::new(&model.stg).unwrap();
        assert_eq!(
            checker.check_csc().unwrap().is_satisfied(),
            truth,
            "{}: unfolding checker",
            model.name
        );
    }
}

#[test]
fn roster_models_are_consistent_and_safe() {
    for model in models() {
        let limits = ExploreLimits {
            max_states: 2_000_000,
            token_bound: 1,
        };
        let sg = StateGraph::build(&model.stg, limits).unwrap();
        for s in sg.states() {
            assert!(sg.marking(s).is_safe(), "{}", model.name);
        }
        let checker = Checker::new(&model.stg).unwrap();
        assert!(
            checker.check_consistency().unwrap().is_consistent(),
            "{}",
            model.name
        );
    }
}

#[test]
fn roster_prefixes_represent_all_markings() {
    use std::collections::HashSet;
    for model in models() {
        // Compare represented marking count against explicit count on
        // the rows small enough to enumerate configurations.
        let prefix = Prefix::of_stg(&model.stg, UnfoldOptions::default()).unwrap();
        let Some(configs) =
            stg_coding_conflicts::unfolding::completeness::cutoff_free_configurations(
                &prefix, 300_000,
            )
        else {
            continue; // too many configurations to enumerate; skip
        };
        let represented: HashSet<_> = configs.iter().map(|c| prefix.marking_of(c)).collect();
        let sg = StateGraph::build(&model.stg, ExploreLimits::default()).unwrap();
        assert_eq!(represented.len(), sg.num_states(), "{}", model.name);
    }
}
