//! STGs with dummy (`τ`) transitions.
//!
//! The paper defers the full treatment of dummies to its long
//! version; this implementation supports them uniformly — dummies
//! contribute nothing to codes, and all three engines apply the same
//! literal state-based definitions — and these tests pin that
//! behaviour down.

use stg_coding_conflicts::csc_core::{CheckOutcome, CheckRequest, Checker, Engine, Property};
use stg_coding_conflicts::stg::{CodeVec, Edge, SignalKind, Stg, StgBuilder};

/// A 4-phase handshake with a dummy "synchronisation" step between
/// the request and the acknowledgement.
fn handshake_with_dummy() -> Stg {
    let mut b = StgBuilder::new();
    let req = b.add_signal("req", SignalKind::Input);
    let ack = b.add_signal("ack", SignalKind::Output);
    let rp = b.edge(req, Edge::Rise);
    let tau = b.dummy("tau");
    let ap = b.edge(ack, Edge::Rise);
    let rm = b.edge(req, Edge::Fall);
    let am = b.edge(ack, Edge::Fall);
    b.chain_cycle(&[rp, tau, ap, rm, am])
        .expect("handshake cycle is well-formed");
    b.set_initial_code(CodeVec::zeros(2));
    b.build().expect("handshake STG builds")
}

#[test]
fn dummy_creates_literal_usc_conflict_but_not_csc() {
    // The states before and after tau share code 10; the outputs
    // enabled differ only through the dummy, and Out only ranges over
    // signal edges: before tau nothing local is enabled, after tau
    // ack+ is — a CSC conflict by the letter of the definition.
    let stg = handshake_with_dummy();
    assert!(stg.has_dummies());
    let checker = Checker::new(&stg).unwrap();
    let CheckOutcome::Conflict(w) = checker.check_usc().unwrap() else {
        panic!("tau splits one code across two states");
    };
    assert!(w.replay(&stg));
    assert_eq!(w.code.to_string(), "10");
}

#[test]
fn engines_agree_on_dummy_models() {
    let stg = handshake_with_dummy();
    for property in [Property::Usc, Property::Csc] {
        let verdicts: Vec<bool> = [
            Engine::UnfoldingIlp,
            Engine::ExplicitStateGraph,
            Engine::SymbolicBdd,
        ]
        .iter()
        .map(|&e| {
            CheckRequest::new(&stg, property)
                .engine(e)
                .run_bool()
                .unwrap()
        })
        .collect();
        assert!(
            verdicts.windows(2).all(|w| w[0] == w[1]),
            "{property:?}: {verdicts:?}"
        );
    }
}

#[test]
fn dummies_do_not_contribute_to_codes() {
    let stg = handshake_with_dummy();
    let t_tau = stg
        .net()
        .transitions()
        .find(|&t| stg.label(t).is_dummy())
        .unwrap();
    let rp = stg
        .net()
        .transitions()
        .find(|&t| stg.transition_name(t) == "req+")
        .unwrap();
    assert_eq!(
        stg.code_after(&[rp, t_tau]),
        stg.code_after(&[rp]),
        "tau must not move the code"
    );
}

#[test]
fn dummy_consistency_checking() {
    let stg = handshake_with_dummy();
    let checker = Checker::new(&stg).unwrap();
    assert!(checker.check_consistency().unwrap().is_consistent());
}
