//! Three-way agreement on *conflict counts*: the IP engine's
//! exhaustive enumeration, the explicit state graph's pair lists and
//! the symbolic engine's model counts must all coincide — the
//! strongest cross-validation in the suite, since each engine derives
//! the number through entirely different machinery.

use stg_coding_conflicts::csc_core::{Checker, ConflictKind};
use stg_coding_conflicts::stg::gen::duplex::{dup_4ph, dup_mod};
use stg_coding_conflicts::stg::gen::random::{random_stg, RandomStgConfig};
use stg_coding_conflicts::stg::gen::ring::lazy_ring;
use stg_coding_conflicts::stg::gen::vme::{vme_master, vme_read};
use stg_coding_conflicts::stg::{StateGraph, Stg};
use stg_coding_conflicts::symbolic::SymbolicChecker;

fn assert_counts_agree(stg: &Stg, label: &str) {
    let sg = StateGraph::build(stg, Default::default()).expect("state graph builds");
    let checker = Checker::new(stg).expect("checker builds");
    let usc_ip = checker
        .enumerate_conflicts(ConflictKind::Usc, 100_000)
        .expect("usc enumeration");
    let csc_ip = checker
        .enumerate_conflicts(ConflictKind::Csc, 100_000)
        .expect("csc enumeration");
    let report = SymbolicChecker::new(stg).analyse();
    let usc_explicit = sg.usc_conflict_pairs().len();
    let csc_explicit = sg.csc_conflict_pairs(stg).len();
    assert_eq!(usc_ip.len(), usc_explicit, "{label}: usc ip vs explicit");
    assert_eq!(csc_ip.len(), csc_explicit, "{label}: csc ip vs explicit");
    assert_eq!(
        report.usc_pairs as usize, usc_explicit,
        "{label}: usc symbolic vs explicit"
    );
    assert_eq!(
        report.csc_pairs as usize, csc_explicit,
        "{label}: csc symbolic vs explicit"
    );
}

#[test]
fn counts_agree_on_generator_models() {
    for (label, stg) in [
        ("vme", vme_read()),
        ("vme_master", vme_master()),
        ("lazy_ring_3", lazy_ring(3)),
        ("dup_2", dup_4ph(2, false)),
        ("dup_mod_2", dup_mod(2)),
    ] {
        assert_counts_agree(&stg, label);
    }
}

#[test]
fn counts_agree_on_random_models() {
    for seed in 0..12 {
        let config = RandomStgConfig {
            signals: 4,
            sync_cycles: 3,
            max_cycle_len: 4,
            splits: 1,
            percent_high: 25,
        };
        let stg = random_stg(&config, 3_000 + seed);
        assert_counts_agree(&stg, &format!("random {seed}"));
    }
}

#[test]
fn master_controller_exercises_the_continue_search_path() {
    // vme_master has USC conflicts whose Out sets coincide, so the
    // CSC search must reject those assignments and keep going to an
    // exhaustive "satisfied" verdict — the exact scenario §3 of the
    // paper describes for its non-linear separating constraint.
    let stg = vme_master();
    let checker = Checker::new(&stg).unwrap();
    assert!(!checker.check_usc().unwrap().is_satisfied());
    assert!(checker.check_csc().unwrap().is_satisfied());
    let usc_pairs = checker
        .enumerate_conflicts(ConflictKind::Usc, 1_000)
        .unwrap();
    assert!(!usc_pairs.is_empty());
    for w in &usc_pairs {
        assert_eq!(w.out1, w.out2, "every USC conflict here is Out-equal");
    }
}
