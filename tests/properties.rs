//! Property-based tests (proptest) over random consistent STGs and
//! random safe nets: completeness of the prefix, correctness of the
//! solver's Unf-compatibility closure, parser round-trips, and
//! engine agreement.

use proptest::prelude::*;

use stg_coding_conflicts::csc_core::{CheckRequest, Engine, Property};
use stg_coding_conflicts::ilp::{Problem, Solver, SolverOptions};
use stg_coding_conflicts::stg::gen::random::{random_stg, RandomStgConfig};
use stg_coding_conflicts::stg::{self, StateGraph};
use stg_coding_conflicts::unfolding::{completeness, EventRelations, Prefix, UnfoldOptions};

fn arb_config() -> impl Strategy<Value = RandomStgConfig> {
    (1usize..=5, 0usize..=4, 2usize..=5, 0usize..=2, 0u8..=100).prop_map(
        |(signals, sync_cycles, max_cycle_len, splits, percent_high)| RandomStgConfig {
            signals,
            sync_cycles,
            max_cycle_len,
            splits,
            percent_high,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The prefix represents exactly the reachable markings
    /// (completeness + soundness of the unfolding engine).
    #[test]
    fn prefix_is_complete(config in arb_config(), seed in 0u64..10_000) {
        let model = random_stg(&config, seed);
        let prefix = Prefix::of_stg(&model, UnfoldOptions::default()).unwrap();
        prop_assume!(prefix.num_events() <= 64); // keep enumeration tractable
        prop_assert!(completeness::verify_completeness(
            &prefix,
            model.net(),
            model.initial_marking(),
            200_000,
        ));
    }

    /// The solver's total assignments are exactly the cut-off-free
    /// configurations of the prefix (Theorem 1: Unf-compatible
    /// vectors ↔ configurations).
    #[test]
    fn solver_enumerates_configurations(config in arb_config(), seed in 0u64..10_000) {
        let model = random_stg(&config, seed);
        let prefix = Prefix::of_stg(&model, UnfoldOptions::default()).unwrap();
        prop_assume!(prefix.num_events() <= 24);
        let expected = completeness::cutoff_free_configurations(&prefix, 1 << 20).unwrap();
        let relations = EventRelations::of(&prefix);
        let mut problem = Problem::new(&relations, 1);
        problem.fix_cutoffs(|e| prefix.is_cutoff(e));
        let mut solver = Solver::new(&problem, SolverOptions::default());
        let mut seen = Vec::new();
        solver.solve(|sides| {
            seen.push(sides[0].clone());
            false
        });
        prop_assert_eq!(seen.len(), expected.len());
        for c in &seen {
            prop_assert!(prefix.is_configuration(c));
            prop_assert!(!c.iter().any(|e| prefix.is_cutoff(
                stg_coding_conflicts::unfolding::EventId::from_index(e)
            )));
        }
    }

    /// Random generated STGs are consistent by construction, and the
    /// prefix-based consistency checker agrees.
    #[test]
    fn random_stgs_are_consistent(config in arb_config(), seed in 0u64..10_000) {
        let model = random_stg(&config, seed);
        // Oracle: the state graph builds without consistency errors.
        let sg = StateGraph::build(&model, Default::default());
        prop_assert!(sg.is_ok());
        let checker = stg_coding_conflicts::csc_core::Checker::new(&model).unwrap();
        prop_assert!(checker.check_consistency().unwrap().is_consistent());
    }

    /// The `.g` writer/parser round-trip preserves structure and all
    /// verdicts.
    #[test]
    fn g_format_roundtrip(config in arb_config(), seed in 0u64..10_000) {
        let model = random_stg(&config, seed);
        let text = stg::to_g_format(&model, "roundtrip");
        let back = stg::parse(&text).unwrap();
        prop_assert_eq!(back.num_signals(), model.num_signals());
        prop_assert_eq!(back.net().num_transitions(), model.net().num_transitions());
        prop_assert_eq!(back.net().num_places(), model.net().num_places());
        // Signals may be re-ordered by kind grouping; compare by name.
        for z in model.signals() {
            let name = model.signal_name(z);
            let bz = back.signal_by_name(name).expect("signal survives");
            prop_assert_eq!(
                back.initial_code().bit(bz),
                model.initial_code().bit(z),
                "initial value of {}",
                name
            );
            prop_assert_eq!(back.signal_kind(bz), model.signal_kind(z));
        }
        // Same verdicts through the explicit engine.
        let explicit = |stg| {
            CheckRequest::new(stg, Property::Csc)
                .engine(Engine::ExplicitStateGraph)
                .run_bool()
        };
        let a = explicit(&model).unwrap();
        let b = explicit(&back).unwrap();
        prop_assert_eq!(a, b);
    }

    /// Unfolding+IP and the explicit oracle agree on USC/CSC for
    /// arbitrary random consistent STGs.
    #[test]
    fn engines_agree_on_random_models(config in arb_config(), seed in 0u64..10_000) {
        let model = random_stg(&config, seed);
        for property in [Property::Usc, Property::Csc] {
            let check = |e| CheckRequest::new(&model, property).engine(e).run_bool();
            let a = check(Engine::UnfoldingIlp).unwrap();
            let b = check(Engine::ExplicitStateGraph).unwrap();
            prop_assert_eq!(a, b, "{:?}", property);
        }
    }

    /// §5 extended reachability agrees with explicit enumeration:
    /// a random linear marking predicate is satisfiable over the
    /// prefix iff some explicitly reachable marking satisfies it.
    #[test]
    fn find_marking_matches_explicit_oracle(
        config in arb_config(),
        seed in 0u64..10_000,
        weights in prop::collection::vec(-2i32..=2, 12),
        rhs in -2i64..=4,
        op_idx in 0usize..3,
    ) {
        use stg_coding_conflicts::csc_core::reach::MarkingConstraint;
        use stg_coding_conflicts::ilp::CmpOp;
        let model = random_stg(&config, seed);
        let net = model.net();
        let coeffs: Vec<(petri::PlaceId, i32)> = net
            .places()
            .zip(weights.iter().cycle())
            .map(|(p, &w)| (p, w))
            .collect();
        let op = [CmpOp::Eq, CmpOp::Le, CmpOp::Ge][op_idx];
        let constraint = MarkingConstraint { coeffs, op, rhs };
        let checker = stg_coding_conflicts::csc_core::Checker::new(&model).unwrap();
        let found = checker.find_marking(std::slice::from_ref(&constraint)).unwrap();
        let sg = StateGraph::build(&model, Default::default()).unwrap();
        let explicit = sg.states().any(|s| constraint.holds(sg.marking(s)));
        prop_assert_eq!(found.is_some(), explicit);
        if let Some(w) = found {
            prop_assert!(constraint.holds(&w.marking));
            let m = net.fire_sequence(model.initial_marking(), &w.sequence).unwrap();
            prop_assert_eq!(m, w.marking);
        }
    }

    /// Deadlock detection agrees with explicit enumeration.
    #[test]
    fn deadlock_matches_explicit_oracle(config in arb_config(), seed in 0u64..10_000) {
        let model = random_stg(&config, seed);
        let checker = stg_coding_conflicts::csc_core::Checker::new(&model).unwrap();
        let found = checker.find_deadlock().unwrap();
        let sg = StateGraph::build(&model, Default::default()).unwrap();
        let explicit = sg.states().any(|s| model.net().is_deadlock(sg.marking(s)));
        prop_assert_eq!(found.is_some(), explicit);
    }

    /// Witnesses from random models always replay.
    #[test]
    fn witnesses_replay(config in arb_config(), seed in 0u64..10_000) {
        let model = random_stg(&config, seed);
        let checker = stg_coding_conflicts::csc_core::Checker::new(&model).unwrap();
        if let stg_coding_conflicts::csc_core::CheckOutcome::Conflict(w) =
            checker.check_csc().unwrap()
        {
            prop_assert!(w.replay(&model));
        }
    }
}
